//! Serving metrics: per-request outcomes, per-device utilization, latency
//! percentiles, SLO attainment and preemption accounting.
//!
//! Everything a [`ServeEngine`](crate::ServeEngine) run produces funnels into
//! a [`ServeReport`]:
//!
//! * [`RequestOutcome`] — one row per submitted request: where it ran, how
//!   long it waited, whether it hit the plan cache, how often it was
//!   preempted and how much suspension/re-residency time that cost, and
//!   whether it met its SLO deadline.
//! * [`DeviceReport`] — one row per fleet device: makespan, dual-queue busy
//!   fractions and the stitched memory trace.
//! * [`LatencySummary`] — nearest-rank p50/p95/p99 plus mean and max over
//!   the completed requests.
//! * [`PriorityLatency`] — the same latency summary broken down per priority
//!   level, which is how a preemptive policy's tail-latency shift becomes
//!   visible (high priorities tighten, low priorities pay).
//! * [`SloSummary`] — attainment over the requests that carried a deadline,
//!   with every miss attributed to a [`MissCause`] (queueing, execution,
//!   preemption or outright failure).

use flashmem_core::cache::CacheStats;
use flashmem_core::telemetry::{FleetTrace, PhaseBreakdown};
use flashmem_core::ExecutionReport;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::SimError;

use crate::request::{FailureCause, RejectCause};

/// Token-level result of a generative request served through the decode
/// path (prefill pass + per-token decode steps). `None` on one-shot
/// requests.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// Prompt tokens processed by the prefill pass.
    pub prompt_tokens: u32,
    /// Tokens emitted (prefill's first token plus one per decode step).
    pub output_tokens: u32,
    /// Time-to-first-token: prefill completion minus arrival, in ms.
    pub ttft_ms: f64,
    /// Inter-token latencies: the gap before each token after the first,
    /// in ms (`output_tokens - 1` entries).
    pub itl_ms: Vec<f64>,
    /// Peak KV-cache residency of this request, in bytes. Grows
    /// monotonically from join to leave, so the peak equals the final
    /// resident size: `(prompt + output - 1) × kv_bytes_per_token`.
    pub kv_peak_bytes: u64,
    /// Largest batch this request shared a decode step with.
    pub max_batch: usize,
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Submission sequence number.
    pub seq: usize,
    /// Model abbreviation.
    pub model: String,
    /// Tenant the request belongs to.
    pub tenant: String,
    /// Request priority.
    pub priority: u8,
    /// Name of the device that served (or rejected) the request.
    pub device: String,
    /// Index of that device in the fleet.
    pub device_index: usize,
    /// Arrival time (global simulated milliseconds).
    pub arrival_ms: f64,
    /// Time the request was admitted and became eligible to issue commands.
    pub start_ms: f64,
    /// Completion (or failure) time.
    pub completion_ms: f64,
    /// Time spent waiting for admission: `start - arrival`.
    pub queue_wait_ms: f64,
    /// End-to-end latency: `completion - arrival`.
    pub latency_ms: f64,
    /// The request's effective SLO deadline as a relative latency budget
    /// (from the request itself or the tenant default), if any.
    pub deadline_ms: Option<f64>,
    /// Laxity at admission time: absolute deadline minus admission time
    /// minus the predicted service time, for deadline-carrying requests.
    /// Positive means the scheduler admitted it with slack to spare;
    /// negative means it was already predicted to miss when it started.
    /// Under policies that do not request service-time estimates
    /// ([`SchedulePolicy::uses_estimates`](crate::SchedulePolicy::uses_estimates))
    /// the predicted service time is zero and this is simply the time to
    /// deadline at admission.
    pub admission_laxity_ms: Option<f64>,
    /// Estimated resident bytes reserved for this request by admission
    /// control — the quantity per-tenant memory caps are charged against
    /// while the request is in flight (zero for requests that failed before
    /// admission).
    pub resident_estimate_bytes: u64,
    /// How many times a preemptive policy suspended this request to make
    /// room for higher-priority work.
    pub preemptions: usize,
    /// Total time the request spent suspended (between eviction and
    /// re-admission), in milliseconds.
    pub suspended_ms: f64,
    /// Total re-residency penalty charged across all resumes (texture
    /// re-packing, unified-memory reload, fixed per-resume overhead), in
    /// milliseconds.
    pub resume_penalty_ms: f64,
    /// True when this request's compiled plan was already in the shared
    /// plan cache when the serve run began. The warmth snapshot is taken in
    /// the run's sequential prologue, so the flag is identical at every pool
    /// width: it reports warmth carried in from earlier runs on the same
    /// cache, never which device happened to win an intra-run compile race.
    /// In-run sharing still shows up in the [`ServeReport::cache`] hit/miss
    /// counters, which the in-flight compile dedup keeps
    /// schedule-independent.
    pub cache_hit: bool,
    /// Peak device memory footprint (MB) observed while the request was
    /// resident. Under concurrent policies this is the *device* footprint
    /// during the request's window, which is the quantity capacity planning
    /// cares about.
    pub peak_memory_mb: f64,
    /// Where the end-to-end latency went: queue wait, compile, exposed
    /// transfer, compute, suspension, and a residual stall term. The phases
    /// sum to [`latency_ms`](Self::latency_ms) by construction.
    pub phases: PhaseBreakdown,
    /// Why overload control shed this request, when it was never admitted
    /// at all: a provably unmeetable deadline at admission control or a
    /// full bounded queue at arrival. Rejected requests carry no error —
    /// rejection is the scheduler declining work, not work failing — and
    /// are excluded from SLO accounting (they were never accepted into the
    /// serving pipeline).
    pub rejected: Option<RejectCause>,
    /// The home device index the steal planner re-placed this request
    /// *from*, when a backed-up shard's queued work was moved to an idle
    /// one; [`device_index`](Self::device_index) is where it actually ran.
    /// `None` for requests that ran where the policy first placed them.
    pub stolen_from: Option<usize>,
    /// The failure, if the request did not complete (out-of-memory, tenant
    /// cap smaller than the model's working set, an injected fault, ...).
    pub error: Option<SimError>,
    /// Typed classification of [`error`](Self::error) — present iff the
    /// request failed. See the request-disposition table in
    /// [`crate::request`].
    pub failure: Option<FailureCause>,
    /// Injected-fault recovery attempts this request consumed: same-device
    /// retries plus restarts after a failover. Never exceeds the armed
    /// [`RecoveryControl::retry_budget`](crate::RecoveryControl::retry_budget)
    /// plus the bounded failover allowance; 0 without recovery.
    pub retries: u32,
    /// True when the recovery planner re-placed this request off the device
    /// it was originally running on (after a device loss or quarantine).
    /// [`device_index`](Self::device_index) is where it finally ran.
    pub failed_over: bool,
    /// The full execution report, available under exclusive (single-slot)
    /// policies where a request owns the whole device while it runs.
    pub report: Option<ExecutionReport>,
    /// Token-level decode result for generative requests served through the
    /// continuous-batching path; `None` for one-shot requests.
    pub decode: Option<DecodeOutcome>,
}

impl RequestOutcome {
    /// True when the request completed.
    pub fn succeeded(&self) -> bool {
        self.error.is_none() && self.rejected.is_none()
    }

    /// True when overload control shed this request instead of admitting it.
    pub fn was_rejected(&self) -> bool {
        self.rejected.is_some()
    }

    /// SLO verdict: `None` when the request carries no deadline or was
    /// rejected by overload control (it was never accepted, so it is not
    /// SLO-tracked — the whole point of shedding is protecting the admitted
    /// requests' attainment), otherwise whether it completed within its
    /// latency budget (a failed request with a deadline counts as missed).
    pub fn slo_met(&self) -> Option<bool> {
        if self.was_rejected() {
            return None;
        }
        self.deadline_ms
            .map(|deadline| self.succeeded() && self.latency_ms <= deadline + 1e-9)
    }

    /// Final slack against the deadline: `deadline − latency`, for
    /// deadline-carrying requests. Positive = met with that much room,
    /// negative = missed by that much.
    pub fn slack_ms(&self) -> Option<f64> {
        self.deadline_ms.map(|deadline| deadline - self.latency_ms)
    }

    /// Why this request missed its deadline, or `None` when it carried no
    /// deadline or met it. Causes are tested in order of specificity:
    /// failure first, then time lost to preemption, then admission
    /// queueing, and only when the service time alone blew the budget is
    /// the miss blamed on execution.
    pub fn miss_cause(&self) -> Option<MissCause> {
        if self.slo_met() != Some(false) {
            return None;
        }
        let deadline = self.deadline_ms.expect("a missed SLO implies a deadline");
        let preempted_ms = self.suspended_ms + self.resume_penalty_ms;
        Some(if !self.succeeded() {
            MissCause::Failed
        } else if preempted_ms > 0.0 && self.latency_ms - preempted_ms <= deadline + 1e-9 {
            MissCause::Preemption
        } else if self.latency_ms - self.queue_wait_ms <= deadline + 1e-9 {
            MissCause::QueueWait
        } else {
            MissCause::Execution
        })
    }
}

/// Why a deadline-carrying request missed its SLO — the breakdown that tells
/// an operator whether to buy devices (queueing), pick a different plan
/// (execution), or tune the preemption trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissCause {
    /// The request failed outright (out-of-memory, tenant cap smaller than
    /// the model, unrecoverable resume).
    Failed,
    /// It would have met its deadline without the time it spent suspended
    /// (plus re-residency penalties) — the cost a preemptive policy shifted
    /// onto this request.
    Preemption,
    /// Its service time fit the budget but admission queueing consumed the
    /// slack — the fleet was oversubscribed or the policy ordered it late.
    QueueWait,
    /// Execution alone exceeded the budget: no admission order could have
    /// met this deadline on this device.
    Execution,
}

/// Utilization summary of one device of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name.
    pub device: String,
    /// Requests placed on this device.
    pub requests: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Wall-clock end of the device's timeline in milliseconds.
    pub makespan_ms: f64,
    /// Busy time of the transfer (DMA) queue in milliseconds.
    pub transfer_busy_ms: f64,
    /// Busy time of the compute queue in milliseconds.
    pub compute_busy_ms: f64,
    /// Transfer-queue busy time over the makespan.
    pub transfer_busy_fraction: f64,
    /// Compute-queue busy time over the makespan.
    pub compute_busy_fraction: f64,
    /// Peak memory footprint of the device over the whole run, in MB.
    pub peak_memory_mb: f64,
    /// High-water mark of the device's admission queue: the largest number
    /// of arrived-but-unadmitted requests simultaneously waiting on this
    /// device at any point of the run. Under a bounded queue
    /// ([`OverloadControl::with_queue_bound`](crate::OverloadControl::with_queue_bound))
    /// this never exceeds the bound — the invariant the overload test suite
    /// pins.
    pub queue_depth_high_water: usize,
    /// The device's memory trace over the whole serving run (the multi-model
    /// Figure 6 curve generalised to many tenants).
    pub memory_trace: MemoryTrace,
}

impl DeviceReport {
    /// An all-zero report for a device that never ran any work (a chaos
    /// round that excluded it, or a fleet slot that stayed idle).
    pub(crate) fn empty(device: &str) -> Self {
        DeviceReport {
            device: device.to_string(),
            requests: 0,
            completed: 0,
            makespan_ms: 0.0,
            transfer_busy_ms: 0.0,
            compute_busy_ms: 0.0,
            transfer_busy_fraction: 0.0,
            compute_busy_fraction: 0.0,
            peak_memory_mb: 0.0,
            queue_depth_high_water: 0,
            memory_trace: MemoryTrace::new(),
        }
    }

    /// Fold one chaos round's report into this accumulated one: counts and
    /// busy time sum, high-water marks take the max, busy fractions are
    /// recomputed against the merged makespan, and the memory traces stitch
    /// (round timelines never overlap — a re-dispatch ready floor is never
    /// below the destination's cumulative makespan). A request that ran
    /// attempts on several devices counts toward `requests` on each.
    pub(crate) fn absorb_round(&mut self, round: DeviceReport) {
        self.requests += round.requests;
        self.completed += round.completed;
        self.makespan_ms = self.makespan_ms.max(round.makespan_ms);
        self.transfer_busy_ms += round.transfer_busy_ms;
        self.compute_busy_ms += round.compute_busy_ms;
        self.transfer_busy_fraction = if self.makespan_ms > 0.0 {
            self.transfer_busy_ms / self.makespan_ms
        } else {
            0.0
        };
        self.compute_busy_fraction = if self.makespan_ms > 0.0 {
            self.compute_busy_ms / self.makespan_ms
        } else {
            0.0
        };
        self.peak_memory_mb = self.peak_memory_mb.max(round.peak_memory_mb);
        self.queue_depth_high_water = self
            .queue_depth_high_water
            .max(round.queue_depth_high_water);
        self.memory_trace.append_shifted(&round.memory_trace, 0.0);
    }
}

/// Nearest-rank percentile of an ascending-sorted slice. `q` in `[0, 1]`.
/// Returns `None` for an empty slice — an empty sample set has no
/// percentiles, and reporting 0.0 made an all-rejected overload run look
/// like infinitely fast service.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Latency distribution summary over the completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median end-to-end latency in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency.
    pub p95_ms: f64,
    /// 99th percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarise a set of latencies (order irrelevant). `None` for an empty
    /// set: a run that completed nothing has no latency distribution, and
    /// the old all-zero summary was indistinguishable from infinitely fast
    /// service in bench JSON.
    pub fn from_latencies(latencies: &[f64]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Some(LatencySummary {
            p50_ms: percentile(&sorted, 0.50).expect("non-empty"),
            p95_ms: percentile(&sorted, 0.95).expect("non-empty"),
            p99_ms: percentile(&sorted, 0.99).expect("non-empty"),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_ms: sorted.last().copied().expect("non-empty"),
        })
    }
}

/// Latency percentiles of one priority level — the lens that shows what a
/// preemptive policy buys: high-priority tails tighten while low-priority
/// tails absorb the suspension and re-residency cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityLatency {
    /// The priority level summarised.
    pub priority: u8,
    /// Completed requests at this priority.
    pub completed: usize,
    /// Latency percentiles over those requests.
    pub latency: LatencySummary,
}

impl PriorityLatency {
    /// Per-priority latency summaries over the completed requests, ascending
    /// by priority. Levels with no completed request are omitted.
    pub fn from_outcomes(outcomes: &[RequestOutcome]) -> Vec<PriorityLatency> {
        let mut levels: Vec<u8> = outcomes
            .iter()
            .filter(|o| o.succeeded())
            .map(|o| o.priority)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels
            .into_iter()
            .map(|priority| {
                let latencies: Vec<f64> = outcomes
                    .iter()
                    .filter(|o| o.succeeded() && o.priority == priority)
                    .map(|o| o.latency_ms)
                    .collect();
                PriorityLatency {
                    priority,
                    completed: latencies.len(),
                    latency: LatencySummary::from_latencies(&latencies)
                        .expect("levels are built from completed requests"),
                }
            })
            .collect()
    }
}

/// Token-level aggregates over a run's decode outcomes: TTFT/ITL
/// percentiles and token throughput. Computed once by each engine's report
/// assembly so one-shot and continuous-batching runs summarise identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenMetrics {
    /// Time-to-first-token percentiles, `None` without completed decode
    /// requests.
    pub ttft: Option<LatencySummary>,
    /// Inter-token-latency percentiles over all decode-step gaps, `None`
    /// without any.
    pub itl: Option<LatencySummary>,
    /// Total tokens emitted by completed decode requests.
    pub decode_tokens: usize,
    /// Emitted tokens per second of `makespan_ms`.
    pub tokens_per_s: f64,
}

impl TokenMetrics {
    /// Aggregate the decode outcomes of completed requests.
    pub fn from_outcomes(outcomes: &[RequestOutcome], makespan_ms: f64) -> Self {
        let decodes: Vec<&DecodeOutcome> = outcomes
            .iter()
            .filter(|o| o.succeeded())
            .filter_map(|o| o.decode.as_ref())
            .collect();
        let ttfts: Vec<f64> = decodes.iter().map(|d| d.ttft_ms).collect();
        let itls: Vec<f64> = decodes
            .iter()
            .flat_map(|d| d.itl_ms.iter().copied())
            .collect();
        let decode_tokens: usize = decodes.iter().map(|d| d.output_tokens as usize).sum();
        let tokens_per_s = if makespan_ms > 0.0 {
            decode_tokens as f64 * 1_000.0 / makespan_ms
        } else {
            0.0
        };
        TokenMetrics {
            ttft: LatencySummary::from_latencies(&ttfts),
            itl: LatencySummary::from_latencies(&itls),
            decode_tokens,
            tokens_per_s,
        }
    }
}

/// SLO attainment over the requests that carried a deadline, with every
/// miss attributed to a [`MissCause`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloSummary {
    /// Requests with an effective deadline (request-level or tenant
    /// default).
    pub tracked: usize,
    /// Requests that completed within their deadline.
    pub met: usize,
    /// Misses blamed on admission queueing ([`MissCause::QueueWait`]).
    pub missed_queue_wait: usize,
    /// Misses blamed on service time alone ([`MissCause::Execution`]).
    pub missed_execution: usize,
    /// Misses blamed on suspension/re-residency time
    /// ([`MissCause::Preemption`]).
    pub missed_preemption: usize,
    /// Misses from requests that failed outright ([`MissCause::Failed`]).
    pub missed_failed: usize,
}

impl SloSummary {
    /// Tally SLO verdicts across a run's outcomes.
    pub fn from_outcomes(outcomes: &[RequestOutcome]) -> Self {
        let mut summary = SloSummary::default();
        for outcome in outcomes {
            if let Some(met) = outcome.slo_met() {
                summary.tracked += 1;
                if met {
                    summary.met += 1;
                }
            }
            match outcome.miss_cause() {
                Some(MissCause::QueueWait) => summary.missed_queue_wait += 1,
                Some(MissCause::Execution) => summary.missed_execution += 1,
                Some(MissCause::Preemption) => summary.missed_preemption += 1,
                Some(MissCause::Failed) => summary.missed_failed += 1,
                None => {}
            }
        }
        summary
    }

    /// Deadline-carrying requests that missed (late or failed).
    pub fn missed(&self) -> usize {
        self.tracked - self.met
    }

    /// Fraction of deadline-carrying requests that met their deadline, in
    /// `[0, 1]`. Returns 1.0 when nothing carried a deadline (an SLO nobody
    /// asked for is vacuously attained).
    pub fn attainment(&self) -> f64 {
        if self.tracked == 0 {
            1.0
        } else {
            self.met as f64 / self.tracked as f64
        }
    }
}

/// How many requests overload control shed, broken down by
/// [`RejectCause`]. The two counters sum to
/// [`ServeReport::rejected`] exactly — every rejection carries a cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedBreakdown {
    /// Rejections from fleet-wide admission control: the deadline was
    /// provably unmeetable even on the fleet's best device.
    pub deadline_unmeetable: usize,
    /// Rejections from a full bounded per-device queue at arrival.
    pub queue_full: usize,
}

impl ShedBreakdown {
    /// Tally rejections by cause across a run's outcomes.
    pub fn from_outcomes(outcomes: &[RequestOutcome]) -> Self {
        let mut shed = ShedBreakdown::default();
        for outcome in outcomes {
            match outcome.rejected {
                Some(RejectCause::DeadlineUnmeetable) => shed.deadline_unmeetable += 1,
                Some(RejectCause::QueueFull) => shed.queue_full += 1,
                None => {}
            }
        }
        shed
    }

    /// Total requests shed across all causes.
    pub fn total(&self) -> usize {
        self.deadline_unmeetable + self.queue_full
    }
}

/// Recovery activity of one serving run — all zero when
/// [`RecoveryControl`](crate::RecoveryControl) is disabled or no fault
/// fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTallies {
    /// Same-device retry re-enqueues after a transient injected fault.
    pub retries: usize,
    /// Requests the recovery planner re-placed onto a surviving device
    /// after a device loss or quarantine.
    pub failovers: usize,
    /// Quarantine events (a device crossing its fault threshold, or a
    /// failed probe re-quarantining it; device losses count too — a lost
    /// device is permanently quarantined).
    pub quarantines: usize,
    /// Probe placements sent to quarantined devices.
    pub probes: usize,
}

impl RecoveryTallies {
    /// True when any recovery machinery fired.
    pub fn any(&self) -> bool {
        self.retries > 0 || self.failovers > 0 || self.quarantines > 0 || self.probes > 0
    }
}

/// How many failed requests died of each [`FailureCause`]. The counters
/// sum to [`ServeReport::failed`] exactly — every failure carries a cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// Requests stranded by a device loss with no surviving failover
    /// target (or failover disabled).
    pub device_lost: usize,
    /// Requests whose final attempt died of an injected transient kernel
    /// fault.
    pub kernel_fault: usize,
    /// Requests whose final attempt died of an injected OOM spike.
    pub oom_spike: usize,
    /// Real capacity failures (pool exhaustion, tenant cap, unrecoverable
    /// resume).
    pub out_of_memory: usize,
    /// Any other execution error.
    pub execution: usize,
}

impl FailureBreakdown {
    /// Tally failures by cause across a run's outcomes.
    pub fn from_outcomes(outcomes: &[RequestOutcome]) -> Self {
        let mut failed = FailureBreakdown::default();
        for outcome in outcomes {
            match outcome.failure {
                Some(FailureCause::DeviceLost) => failed.device_lost += 1,
                Some(FailureCause::KernelFault) => failed.kernel_fault += 1,
                Some(FailureCause::OomSpike) => failed.oom_spike += 1,
                Some(FailureCause::OutOfMemory) => failed.out_of_memory += 1,
                Some(FailureCause::Execution) => failed.execution += 1,
                None => {}
            }
        }
        failed
    }

    /// Total failed requests across all causes.
    pub fn total(&self) -> usize {
        self.device_lost + self.kernel_fault + self.oom_spike + self.out_of_memory + self.execution
    }
}

/// The full result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Name of the scheduling policy that ran.
    pub policy: String,
    /// Per-request outcomes in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-device utilization, in fleet order.
    pub devices: Vec<DeviceReport>,
    /// Latency percentiles over completed requests; `None` when nothing
    /// completed (an all-shed overload run has no latency distribution).
    pub latency: Option<LatencySummary>,
    /// Latency percentiles broken down per priority level.
    pub per_priority: Vec<PriorityLatency>,
    /// Time-to-first-token percentiles over completed generative requests;
    /// `None` when the run served no decode requests (or completed none).
    pub ttft: Option<LatencySummary>,
    /// Inter-token-latency percentiles over every decode-step gap of every
    /// completed generative request; `None` without decode traffic.
    pub itl: Option<LatencySummary>,
    /// Total tokens emitted by completed generative requests.
    pub decode_tokens: usize,
    /// Emitted tokens per second of simulated makespan (0.0 without decode
    /// traffic).
    pub tokens_per_s: f64,
    /// SLO attainment over the deadline-carrying requests.
    pub slo: SloSummary,
    /// Total preemptions across all requests (0 under non-preemptive
    /// policies).
    pub preemptions: usize,
    /// Completed requests per second of simulated makespan.
    pub throughput_rps: f64,
    /// Plan-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Recovery activity: retries, failovers, quarantines and probes. All
    /// zero when recovery is disabled or nothing faulted.
    pub recovery: RecoveryTallies,
    /// The merged per-device event trace, when the engine ran with tracing
    /// enabled ([`ServeEngine::with_trace`](crate::ServeEngine::with_trace)).
    /// `None` on untraced runs; a traced report with this field stripped is
    /// byte-identical to an untraced one (recording never perturbs the
    /// simulation).
    pub trace: Option<FleetTrace>,
}

impl ServeReport {
    /// Number of requests that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.succeeded()).count()
    }

    /// Number of accepted requests that failed during admission or
    /// execution (out-of-memory, unrecoverable resume, worker panic, ...).
    /// Rejections are not failures — see [`ServeReport::rejected`].
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }

    /// Number of requests shed by overload control (admission reject or
    /// queue-full). `accepted() + rejected()` partitions the submitted
    /// requests exactly: nothing is ever silently lost.
    pub fn rejected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.was_rejected()).count()
    }

    /// Number of requests accepted into the serving pipeline (they either
    /// completed or failed with an error — never vanished).
    pub fn accepted(&self) -> usize {
        self.outcomes.len() - self.rejected()
    }

    /// Number of requests the steal planner re-placed from their backed-up
    /// home shard onto another device.
    pub fn stolen(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.stolen_from.is_some())
            .count()
    }

    /// Rejections broken down by cause; sums to [`ServeReport::rejected`].
    pub fn shed_by_cause(&self) -> ShedBreakdown {
        ShedBreakdown::from_outcomes(&self.outcomes)
    }

    /// Failures broken down by cause; sums to [`ServeReport::failed`].
    pub fn failed_by_cause(&self) -> FailureBreakdown {
        FailureBreakdown::from_outcomes(&self.outcomes)
    }

    /// Total injected-fault recovery attempts consumed across all
    /// outcomes; with `completed` as denominator this is the *retry
    /// amplification* the chaos bench reports.
    pub fn total_retries(&self) -> usize {
        self.outcomes.iter().map(|o| o.retries as usize).sum()
    }

    /// Debug-build check of the request-disposition partition (see
    /// [`crate::request`]): every outcome is exactly one of completed /
    /// rejected / failed, `accepted + rejected == submitted`,
    /// `completed + failed == accepted`, every rejection and failure
    /// carries exactly one typed cause, and a rejected request never
    /// carries an error. Called at every report commit point; a no-op in
    /// release builds.
    pub fn assert_disposition(&self) {
        #[cfg(debug_assertions)]
        {
            for o in &self.outcomes {
                assert!(
                    !(o.rejected.is_some() && o.error.is_some()),
                    "request #{} both rejected and errored",
                    o.seq
                );
                assert_eq!(
                    o.failure.is_some(),
                    o.error.is_some(),
                    "request #{}: failure cause must accompany exactly the errored outcomes",
                    o.seq
                );
            }
            let submitted = self.outcomes.len();
            assert_eq!(
                self.accepted() + self.rejected(),
                submitted,
                "accepted + rejected must partition the submitted requests"
            );
            assert_eq!(
                self.completed() + self.failed(),
                self.accepted(),
                "completed + failed must partition the accepted requests"
            );
            assert_eq!(
                self.shed_by_cause().total(),
                self.rejected(),
                "every rejection carries a cause"
            );
            assert_eq!(
                self.failed_by_cause().total(),
                self.failed(),
                "every failure carries a cause"
            );
        }
    }

    /// Wall-clock end of the whole run (max across devices).
    pub fn makespan_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.makespan_ms)
            .fold(0.0_f64, f64::max)
    }

    /// Mean admission-time laxity over the deadline-carrying requests, or
    /// 0.0 when nothing carried a deadline. Positive means the scheduler
    /// typically admitted deadline work with slack in hand.
    pub fn mean_admission_laxity_ms(&self) -> f64 {
        let laxities: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.admission_laxity_ms)
            .collect();
        if laxities.is_empty() {
            0.0
        } else {
            laxities.iter().sum::<f64>() / laxities.len() as f64
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} policy: {}/{} requests completed in {:.0} ms ({:.2} req/s)",
            self.policy,
            self.completed(),
            self.outcomes.len(),
            self.makespan_ms(),
            self.throughput_rps
        )?;
        let shed = self.shed_by_cause();
        if shed.total() > 0 || self.stolen() > 0 {
            writeln!(
                f,
                "overload: {} rejected ({} deadline-unmeetable, {} queue-full), {} stolen",
                shed.total(),
                shed.deadline_unmeetable,
                shed.queue_full,
                self.stolen()
            )?;
        }
        let failed = self.failed_by_cause();
        if self.recovery.any() || failed.total() > 0 {
            writeln!(
                f,
                "recovery: {} retries, {} failovers, {} quarantines, {} probes; \
                 {} failed ({} device-lost, {} kernel-fault, {} oom-spike, {} out-of-memory, {} execution)",
                self.recovery.retries,
                self.recovery.failovers,
                self.recovery.quarantines,
                self.recovery.probes,
                failed.total(),
                failed.device_lost,
                failed.kernel_fault,
                failed.oom_spike,
                failed.out_of_memory,
                failed.execution
            )?;
        }
        match &self.latency {
            Some(latency) => writeln!(
                f,
                "latency p50/p95/p99: {:.0}/{:.0}/{:.0} ms (mean {:.0}, max {:.0})",
                latency.p50_ms, latency.p95_ms, latency.p99_ms, latency.mean_ms, latency.max_ms
            )?,
            None => writeln!(f, "latency: no completed requests")?,
        }
        if let (Some(ttft), Some(itl)) = (&self.ttft, &self.itl) {
            writeln!(
                f,
                "decode: {} tokens ({:.1} tok/s), TTFT p50/p95/p99 {:.0}/{:.0}/{:.0} ms, ITL p50/p95/p99 {:.1}/{:.1}/{:.1} ms",
                self.decode_tokens,
                self.tokens_per_s,
                ttft.p50_ms,
                ttft.p95_ms,
                ttft.p99_ms,
                itl.p50_ms,
                itl.p95_ms,
                itl.p99_ms
            )?;
        }
        for p in &self.per_priority {
            writeln!(
                f,
                "  prio {}: {} done, p50/p95/p99 {:.0}/{:.0}/{:.0} ms",
                p.priority, p.completed, p.latency.p50_ms, p.latency.p95_ms, p.latency.p99_ms
            )?;
        }
        if self.slo.tracked > 0 {
            writeln!(
                f,
                "SLO: {}/{} deadlines met ({:.0}% attainment), {} preemption{}",
                self.slo.met,
                self.slo.tracked,
                100.0 * self.slo.attainment(),
                self.preemptions,
                if self.preemptions == 1 { "" } else { "s" }
            )?;
            if self.slo.missed() > 0 {
                writeln!(
                    f,
                    "  misses by cause: {} queueing, {} execution, {} preemption, {} failed",
                    self.slo.missed_queue_wait,
                    self.slo.missed_execution,
                    self.slo.missed_preemption,
                    self.slo.missed_failed
                )?;
            }
        } else if self.preemptions > 0 {
            writeln!(f, "{} preemptions (no SLO deadlines set)", self.preemptions)?;
        }
        for d in &self.devices {
            writeln!(
                f,
                "  {}: {} reqs, makespan {:.0} ms, load queue {:.0}% busy, compute {:.0}% busy, peak {:.0} MB",
                d.device,
                d.requests,
                d.makespan_ms,
                100.0 * d.transfer_busy_fraction,
                100.0 * d.compute_busy_fraction,
                d.peak_memory_mb
            )?;
        }
        write!(f, "plan cache: {}", self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.95), Some(95.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn summary_orders_quantiles() {
        let lat = [120.0, 10.0, 45.0, 300.0, 60.0];
        let s = LatencySummary::from_latencies(&lat).unwrap();
        assert!(s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert_eq!(s.max_ms, 300.0);
        assert!((s.mean_ms - 107.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_explicitly_absent() {
        // Regression: an empty sample set used to summarise as all-zero
        // percentiles, making a 100%-shed overload run look like
        // infinitely fast service. It must be `None` instead.
        assert_eq!(LatencySummary::from_latencies(&[]), None);
    }

    fn outcome(priority: u8, latency_ms: f64, deadline_ms: Option<f64>) -> RequestOutcome {
        RequestOutcome {
            seq: 0,
            model: "m".into(),
            tenant: "t".into(),
            priority,
            device: "d".into(),
            device_index: 0,
            arrival_ms: 0.0,
            start_ms: 0.0,
            completion_ms: latency_ms,
            queue_wait_ms: 0.0,
            latency_ms,
            deadline_ms,
            admission_laxity_ms: None,
            resident_estimate_bytes: 0,
            preemptions: 0,
            suspended_ms: 0.0,
            resume_penalty_ms: 0.0,
            cache_hit: false,
            peak_memory_mb: 0.0,
            phases: PhaseBreakdown::default(),
            rejected: None,
            stolen_from: None,
            error: None,
            failure: None,
            retries: 0,
            failed_over: false,
            report: None,
            decode: None,
        }
    }

    #[test]
    fn token_metrics_aggregate_completed_decodes_only() {
        let mut gen_ok = outcome(0, 100.0, None);
        gen_ok.decode = Some(DecodeOutcome {
            prompt_tokens: 8,
            output_tokens: 3,
            ttft_ms: 40.0,
            itl_ms: vec![10.0, 20.0],
            kv_peak_bytes: 10 * 4096,
            max_batch: 2,
        });
        let mut gen_failed = outcome(0, 100.0, None);
        gen_failed.decode = Some(DecodeOutcome {
            prompt_tokens: 8,
            output_tokens: 9,
            ttft_ms: 1.0,
            itl_ms: vec![1.0],
            kv_peak_bytes: 0,
            max_batch: 1,
        });
        gen_failed.error = Some(SimError::InvalidParameter {
            message: "x".into(),
        });
        let one_shot = outcome(0, 50.0, None);

        let m = TokenMetrics::from_outcomes(&[gen_ok, gen_failed, one_shot], 1_000.0);
        assert_eq!(m.decode_tokens, 3);
        assert_eq!(m.tokens_per_s, 3.0);
        assert_eq!(m.ttft.unwrap().max_ms, 40.0);
        assert_eq!(m.itl.unwrap().max_ms, 20.0);

        let empty = TokenMetrics::from_outcomes(&[outcome(0, 50.0, None)], 1_000.0);
        assert_eq!(empty.ttft, None);
        assert_eq!(empty.itl, None);
        assert_eq!(empty.decode_tokens, 0);
        assert_eq!(empty.tokens_per_s, 0.0);
    }

    #[test]
    fn slo_verdicts_and_attainment() {
        let ok = outcome(0, 100.0, Some(200.0));
        let late = outcome(0, 300.0, Some(200.0));
        let untracked = outcome(0, 999.0, None);
        let mut failed = outcome(0, 50.0, Some(200.0));
        failed.error = Some(SimError::InvalidParameter {
            message: "x".into(),
        });
        assert_eq!(ok.slo_met(), Some(true));
        assert_eq!(late.slo_met(), Some(false));
        assert_eq!(untracked.slo_met(), None);
        assert_eq!(failed.slo_met(), Some(false));
        assert_eq!(ok.slack_ms(), Some(100.0));
        assert_eq!(late.slack_ms(), Some(-100.0));
        assert_eq!(untracked.slack_ms(), None);

        let slo = SloSummary::from_outcomes(&[ok, late, untracked, failed]);
        assert_eq!(slo.tracked, 3);
        assert_eq!(slo.met, 1);
        assert_eq!(slo.missed(), 2);
        assert!((slo.attainment() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(SloSummary::default().attainment(), 1.0);
    }

    #[test]
    fn miss_causes_classify_in_order_of_specificity() {
        // Met or untracked: no cause.
        assert_eq!(outcome(0, 100.0, Some(200.0)).miss_cause(), None);
        assert_eq!(outcome(0, 999.0, None).miss_cause(), None);
        // Failed beats everything.
        let mut failed = outcome(0, 300.0, Some(200.0));
        failed.error = Some(SimError::InvalidParameter {
            message: "x".into(),
        });
        assert_eq!(failed.miss_cause(), Some(MissCause::Failed));
        // Suspension time that alone explains the overshoot: preemption.
        let mut preempted = outcome(0, 300.0, Some(200.0));
        preempted.suspended_ms = 120.0;
        preempted.resume_penalty_ms = 30.0;
        assert_eq!(preempted.miss_cause(), Some(MissCause::Preemption));
        // Queueing that alone explains the overshoot: queue wait.
        let mut queued = outcome(0, 300.0, Some(200.0));
        queued.queue_wait_ms = 250.0;
        assert_eq!(queued.miss_cause(), Some(MissCause::QueueWait));
        // Neither: the service time itself blew the budget.
        let slow = outcome(0, 300.0, Some(200.0));
        assert_eq!(slow.miss_cause(), Some(MissCause::Execution));
        // Suspension too small to explain the miss falls through to the
        // next cause.
        let mut barely_preempted = outcome(0, 300.0, Some(200.0));
        barely_preempted.suspended_ms = 10.0;
        assert_eq!(barely_preempted.miss_cause(), Some(MissCause::Execution));
    }

    #[test]
    fn slo_summary_attributes_every_miss_to_exactly_one_cause() {
        let ok = outcome(0, 100.0, Some(200.0));
        let slow = outcome(0, 300.0, Some(200.0));
        let mut queued = outcome(0, 300.0, Some(200.0));
        queued.queue_wait_ms = 250.0;
        let mut preempted = outcome(0, 300.0, Some(200.0));
        preempted.suspended_ms = 150.0;
        let mut failed = outcome(0, 50.0, Some(200.0));
        failed.error = Some(SimError::InvalidParameter {
            message: "x".into(),
        });
        let slo = SloSummary::from_outcomes(&[ok, slow, queued, preempted, failed]);
        assert_eq!(slo.tracked, 5);
        assert_eq!(slo.met, 1);
        assert_eq!(slo.missed(), 4);
        assert_eq!(slo.missed_execution, 1);
        assert_eq!(slo.missed_queue_wait, 1);
        assert_eq!(slo.missed_preemption, 1);
        assert_eq!(slo.missed_failed, 1);
        assert_eq!(
            slo.missed_queue_wait
                + slo.missed_execution
                + slo.missed_preemption
                + slo.missed_failed,
            slo.missed()
        );
    }

    #[test]
    fn rejected_requests_are_excluded_from_slo_accounting() {
        let mut shed = outcome(0, 0.0, Some(200.0));
        shed.rejected = Some(RejectCause::DeadlineUnmeetable);
        assert!(!shed.succeeded());
        assert!(shed.was_rejected());
        // A deadline-carrying reject is *not* SLO-tracked: it was never
        // accepted into the pipeline.
        assert_eq!(shed.slo_met(), None);
        assert_eq!(shed.miss_cause(), None);
        let slo = SloSummary::from_outcomes(&[shed, outcome(0, 100.0, Some(200.0))]);
        assert_eq!(slo.tracked, 1);
        assert_eq!(slo.met, 1);
    }

    #[test]
    fn shed_breakdown_sums_to_the_rejected_tally() {
        let ok = outcome(0, 100.0, None);
        let mut unmeetable = outcome(0, 0.0, Some(1.0));
        unmeetable.rejected = Some(RejectCause::DeadlineUnmeetable);
        let mut full_a = outcome(0, 0.0, None);
        full_a.rejected = Some(RejectCause::QueueFull);
        let mut full_b = outcome(0, 0.0, None);
        full_b.rejected = Some(RejectCause::QueueFull);
        let outcomes = vec![ok, unmeetable, full_a, full_b];
        let shed = ShedBreakdown::from_outcomes(&outcomes);
        assert_eq!(shed.deadline_unmeetable, 1);
        assert_eq!(shed.queue_full, 2);
        assert_eq!(shed.total(), 3);
        assert_eq!(RejectCause::QueueFull.label(), "queue-full");
        assert_eq!(
            RejectCause::DeadlineUnmeetable.to_string(),
            "deadline-unmeetable"
        );
    }

    #[test]
    fn per_priority_breakdown_groups_and_sorts() {
        let outcomes = vec![
            outcome(2, 10.0, None),
            outcome(0, 100.0, None),
            outcome(2, 30.0, None),
            outcome(0, 200.0, None),
        ];
        let per = PriorityLatency::from_outcomes(&outcomes);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].priority, 0);
        assert_eq!(per[0].completed, 2);
        assert_eq!(per[0].latency.max_ms, 200.0);
        assert_eq!(per[1].priority, 2);
        assert_eq!(per[1].latency.max_ms, 30.0);
    }
}
