//! FIFO multi-model execution (Section 2.2 / Figure 6), as a special case of
//! the serving scheduler.
//!
//! AI-powered mobile apps chain several distinct DNNs (detector → depth →
//! generator, or ASR → translation → image generation). Holding every model
//! resident is infeasible; naive FIFO execution re-pays the full load +
//! layout-transform cost on every invocation. [`MultiModelRunner`] executes a
//! FIFO queue of models under a global memory cap: each model is compiled
//! once (through the plan cache), executed with its streaming plan, and its
//! weights are evicted before the next model starts, producing the stitched
//! memory-over-time trace that Figure 6 plots.
//!
//! Through PR 1 this lived in `flashmem-core` as a bespoke loop; it now
//! delegates to [`ServeEngine`] under the FIFO policy, whose exclusive mode
//! performs the identical float arithmetic — the reports are byte-for-byte
//! equal to the legacy implementation (proven in `tests/scheduler.rs`).

use flashmem_core::FlashMemConfig;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::{DeviceSpec, SimError};
use flashmem_graph::ModelSpec;
use serde::{Deserialize, Serialize};

use crate::request::ServeRequest;
use crate::server::ServeEngine;

/// One model invocation inside a FIFO workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationResult {
    /// Model abbreviation.
    pub model: String,
    /// Queue position of this invocation.
    pub sequence: usize,
    /// Integrated latency of the invocation in milliseconds.
    pub latency_ms: f64,
    /// Peak memory during the invocation in MB.
    pub peak_memory_mb: f64,
}

/// Aggregate result of a FIFO multi-model run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiModelReport {
    /// Per-invocation results in execution order.
    pub invocations: Vec<InvocationResult>,
    /// Total wall-clock time of the whole queue in milliseconds.
    pub total_latency_ms: f64,
    /// Peak memory across the whole workload in MB.
    pub peak_memory_mb: f64,
    /// Time-weighted average memory across the workload in MB.
    pub average_memory_mb: f64,
    /// The stitched memory trace over the whole workload (Figure 6's curve).
    pub memory_trace: MemoryTrace,
}

impl MultiModelReport {
    /// Number of model invocations executed.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// True if nothing was executed.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }
}

/// Executes a FIFO queue of models under a global memory cap.
#[derive(Debug, Clone)]
pub struct MultiModelRunner {
    device: DeviceSpec,
    config: FlashMemConfig,
    memory_cap_bytes: Option<u64>,
}

impl MultiModelRunner {
    /// Create a runner for `device` using `config` for every model.
    pub fn new(device: DeviceSpec, config: FlashMemConfig) -> Self {
        MultiModelRunner {
            device,
            config,
            memory_cap_bytes: None,
        }
    }

    /// Impose a manual memory cap (the paper uses 1.5 GB in Figure 6).
    pub fn with_memory_cap_bytes(mut self, bytes: u64) -> Self {
        self.memory_cap_bytes = Some(bytes);
        self
    }

    /// Run `iterations` rounds over the FIFO `queue` of models by delegating
    /// to the serving scheduler under the FIFO policy (one in-flight
    /// inference, eviction between invocations).
    ///
    /// # Errors
    ///
    /// Returns the first simulator error (typically out-of-memory when the
    /// cap is too small for a preloading configuration), like the legacy
    /// implementation.
    pub fn run_fifo(
        &self,
        queue: &[ModelSpec],
        iterations: usize,
    ) -> Result<MultiModelReport, SimError> {
        let device = match self.memory_cap_bytes {
            Some(cap) => self.device.clone().with_app_budget_bytes(cap),
            None => self.device.clone(),
        };
        let requests: Vec<ServeRequest> = (0..iterations)
            .flat_map(|_| queue.iter())
            .map(|model| ServeRequest::new(model.clone(), "fifo"))
            .collect();
        let engine = ServeEngine::new(vec![device], self.config.clone());
        let serve_report = engine.run(&requests)?;

        let mut invocations = Vec::with_capacity(serve_report.outcomes.len());
        let mut clock_ms = 0.0;
        let mut peak_mb: f64 = 0.0;
        let mut weighted_mem = 0.0;
        for (sequence, outcome) in serve_report.outcomes.iter().enumerate() {
            if let Some(error) = &outcome.error {
                return Err(error.clone());
            }
            let report = outcome
                .report
                .as_ref()
                .expect("exclusive FIFO outcomes carry full reports");
            invocations.push(InvocationResult {
                model: outcome.model.clone(),
                sequence,
                latency_ms: report.integrated_latency_ms,
                peak_memory_mb: report.peak_memory_mb,
            });
            weighted_mem += report.average_memory_mb * report.integrated_latency_ms;
            clock_ms += report.integrated_latency_ms;
            peak_mb = peak_mb.max(report.peak_memory_mb);
        }

        Ok(MultiModelReport {
            invocations,
            total_latency_ms: clock_ms,
            peak_memory_mb: peak_mb,
            average_memory_mb: if clock_ms > 0.0 {
                weighted_mem / clock_ms
            } else {
                0.0
            },
            memory_trace: serve_report.devices[0].memory_trace.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn small_queue() -> Vec<ModelSpec> {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    }

    #[test]
    fn fifo_run_executes_every_invocation() {
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let report = runner.run_fifo(&small_queue(), 2).unwrap();
        assert_eq!(report.len(), 4);
        assert!(report.total_latency_ms > 0.0);
        assert!(report.peak_memory_mb > 0.0);
        assert!(!report.memory_trace.is_empty());
        // Invocation latencies sum to the total.
        let sum: f64 = report.invocations.iter().map(|i| i.latency_ms).sum();
        assert!((sum - report.total_latency_ms).abs() < 1e-6);
    }

    #[test]
    fn memory_cap_is_respected_by_streaming_plans() {
        let cap = 1_536u64 * 1024 * 1024; // the paper's 1.5 GB constraint
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority())
                .with_memory_cap_bytes(cap);
        let report = runner.run_fifo(&small_queue(), 1).unwrap();
        assert!(report.peak_memory_mb <= cap as f64 / (1024.0 * 1024.0) + 1.0);
    }

    #[test]
    fn eviction_returns_memory_to_zero_between_models() {
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let report = runner.run_fifo(&small_queue(), 1).unwrap();
        // The stitched trace must hit zero at least twice (after each model).
        let zeros = report
            .memory_trace
            .samples()
            .iter()
            .filter(|s| s.bytes == 0)
            .count();
        assert!(zeros >= 2, "only {zeros} zero samples");
    }

    #[test]
    fn empty_queue_produces_empty_report() {
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let report = runner.run_fifo(&[], 3).unwrap();
        assert!(report.is_empty());
        assert_eq!(report.total_latency_ms, 0.0);
    }

    #[test]
    fn weights_are_evicted_before_the_next_model_starts() {
        let queue = small_queue();
        let iterations = 2;
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let report = runner.run_fifo(&queue, iterations).unwrap();

        // Each invocation holds memory while it runs…
        for invocation in &report.invocations {
            assert!(
                invocation.peak_memory_mb > 0.0,
                "invocation {} held no memory",
                invocation.sequence
            );
        }

        // …and at every invocation boundary the stitched trace records an
        // eviction to zero at (or marginally after — trace clamping moves
        // frees forward, never backward) that invocation's end, before the
        // next invocation's window opens: FIFO eviction order.
        let samples = report.memory_trace.samples();
        let mut boundary_ms = 0.0;
        for invocation in &report.invocations {
            boundary_ms += invocation.latency_ms;
            // Within 1% (+1 ms) of the boundary — tight enough that the zero
            // belongs to this boundary, not the next model's own mid-run dips.
            let window_end = boundary_ms * 1.01 + 1.0;
            let evicted = samples.iter().any(|s| {
                s.bytes == 0 && s.time_ms >= boundary_ms - 1e-6 && s.time_ms <= window_end
            });
            assert!(
                evicted,
                "invocation {} was not evicted to zero near its end at {boundary_ms} ms",
                invocation.sequence
            );
        }

        // The trace clock never runs backwards.
        for pair in samples.windows(2) {
            assert!(
                pair[1].time_ms >= pair[0].time_ms - 1e-9,
                "trace out of order"
            );
        }
    }

    #[test]
    fn stitched_trace_never_exceeds_the_figure_6_cap() {
        let cap = 1_536u64 * 1024 * 1024; // the paper's 1.5 GB constraint
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority())
                .with_memory_cap_bytes(cap);
        let report = runner.run_fifo(&small_queue(), 2).unwrap();
        // Every sample of the stitched trace — not just the reported peak —
        // stays under the cap.
        for sample in report.memory_trace.samples() {
            assert!(
                sample.bytes <= cap,
                "trace sample at {} ms holds {} bytes, above the {} byte cap",
                sample.time_ms,
                sample.bytes,
                cap
            );
        }
        assert!(report.peak_memory_mb <= cap as f64 / (1024.0 * 1024.0) + 1e-6);
    }

    #[test]
    fn average_memory_is_below_peak() {
        let runner =
            MultiModelRunner::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let report = runner.run_fifo(&small_queue(), 1).unwrap();
        assert!(report.average_memory_mb <= report.peak_memory_mb);
    }
}
