//! Deterministic seeded workload generation.
//!
//! The serving benchmarks sweep arrival *patterns* × policies × fleet sizes;
//! every pattern here is a pure function of its seed (SplitMix64, the
//! workspace's offline PRNG), so two runs of the same spec produce identical
//! request lists and every serving experiment is reproducible.

use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_graph::ModelSpec;

use crate::request::ServeRequest;

/// How request arrival times are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// One request every `interval_ms` — a steady camera-pipeline cadence.
    Steady {
        /// Fixed gap between consecutive arrivals.
        interval_ms: f64,
    },
    /// Exponentially distributed gaps with the given mean — open-loop user
    /// traffic.
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_interval_ms: f64,
    },
    /// Bursts of `burst_size` simultaneous arrivals separated by `gap_ms` —
    /// the notification-fan-out worst case.
    Bursty {
        /// Requests per burst.
        burst_size: usize,
        /// Gap between bursts.
        gap_ms: f64,
    },
}

impl ArrivalPattern {
    /// Short name used in tables and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Steady { .. } => "steady",
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Bursty { .. } => "bursty",
        }
    }

    /// Arrival time of request `index` given the previous arrival.
    fn next_arrival(&self, previous_ms: f64, index: usize, rng: &mut SplitMix64) -> f64 {
        match self {
            ArrivalPattern::Steady { interval_ms } => {
                if index == 0 {
                    0.0
                } else {
                    previous_ms + interval_ms.max(0.0)
                }
            }
            ArrivalPattern::Poisson { mean_interval_ms } => {
                if index == 0 {
                    0.0
                } else {
                    // Inverse-CDF exponential gap; clamp the uniform away from
                    // 1.0 so ln() stays finite.
                    let u = rng.gen_f64().min(1.0 - 1e-12);
                    previous_ms + mean_interval_ms.max(0.0) * (-(1.0 - u).ln())
                }
            }
            ArrivalPattern::Bursty { burst_size, gap_ms } => {
                let burst = (*burst_size).max(1);
                (index / burst) as f64 * gap_ms.max(0.0)
            }
        }
    }
}

/// A reproducible serving workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Arrival-time pattern.
    pub pattern: ArrivalPattern,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct tenants (`tenant-0` … `tenant-{n-1}`).
    pub tenants: usize,
    /// Number of priority levels (priorities are drawn from `0..levels`).
    pub priority_levels: u8,
    /// PRNG seed — same seed, same workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the request list, drawing models round-robin-free (uniformly
    /// seeded) from `models`.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn generate(&self, models: &[ModelSpec]) -> Vec<ServeRequest> {
        assert!(!models.is_empty(), "workload needs at least one model");
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let tenants = self.tenants.max(1);
        let levels = self.priority_levels.max(1);
        let mut arrival = 0.0;
        let mut requests = Vec::with_capacity(self.requests);
        for index in 0..self.requests {
            arrival = self.pattern.next_arrival(arrival, index, &mut rng);
            let model =
                models[rng.gen_range_inclusive(0, models.len() as u64 - 1) as usize].clone();
            let tenant = format!("tenant-{}", rng.gen_range_inclusive(0, tenants as u64 - 1));
            let priority = rng.gen_range_inclusive(0, u64::from(levels) - 1) as u8;
            requests.push(ServeRequest {
                model,
                tenant,
                priority,
                arrival_ms: arrival,
                deadline_ms: None,
            });
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn models() -> Vec<ModelSpec> {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    }

    fn spec(pattern: ArrivalPattern) -> WorkloadSpec {
        WorkloadSpec {
            pattern,
            requests: 12,
            tenants: 3,
            priority_levels: 3,
            seed: 42,
        }
    }

    fn all_patterns() -> Vec<ArrivalPattern> {
        vec![
            ArrivalPattern::Steady { interval_ms: 50.0 },
            ArrivalPattern::Poisson {
                mean_interval_ms: 100.0,
            },
            ArrivalPattern::Bursty {
                burst_size: 4,
                gap_ms: 1000.0,
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = spec(ArrivalPattern::Poisson {
            mean_interval_ms: 100.0,
        });
        let a = s.generate(&models());
        let b = s.generate(&models());
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.model.abbr, y.model.abbr);
        }
        let other = WorkloadSpec { seed: 43, ..s }.generate(&models());
        assert!(a
            .iter()
            .zip(&other)
            .any(|(x, y)| x.arrival_ms != y.arrival_ms || x.tenant != y.tenant));
    }

    #[test]
    fn same_seed_reproduces_arrivals_across_every_pattern() {
        for pattern in all_patterns() {
            let s = spec(pattern);
            let a = s.generate(&models());
            let b = s.generate(&models());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_ms, y.arrival_ms, "{pattern:?}");
                assert_eq!(x.tenant, y.tenant, "{pattern:?}");
                assert_eq!(x.priority, y.priority, "{pattern:?}");
                assert_eq!(x.model.abbr, y.model.abbr, "{pattern:?}");
            }
            // Arrivals are non-negative and non-decreasing under every
            // pattern.
            let mut previous = 0.0;
            for r in &a {
                assert!(r.arrival_ms >= previous, "{pattern:?}");
                previous = r.arrival_ms;
            }
        }
    }

    #[test]
    fn poisson_mean_gap_matches_the_configured_rate() {
        let mean_interval_ms = 120.0;
        let n = 4000;
        let reqs = WorkloadSpec {
            pattern: ArrivalPattern::Poisson { mean_interval_ms },
            requests: n,
            tenants: 2,
            priority_levels: 2,
            seed: 0x00A1_1CE5,
        }
        .generate(&models());
        let span = reqs.last().unwrap().arrival_ms - reqs[0].arrival_ms;
        let mean_gap = span / (n - 1) as f64;
        // Exponential gaps: the sample mean over 4k draws lands within 10%
        // of the configured mean.
        assert!(
            (mean_gap - mean_interval_ms).abs() < 0.1 * mean_interval_ms,
            "poisson mean gap {mean_gap} vs configured {mean_interval_ms}"
        );
    }

    #[test]
    fn bursty_mean_gap_matches_the_configured_rate() {
        let (burst_size, gap_ms) = (4, 800.0);
        let n = 4000;
        let reqs = WorkloadSpec {
            pattern: ArrivalPattern::Bursty { burst_size, gap_ms },
            requests: n,
            tenants: 2,
            priority_levels: 2,
            seed: 7,
        }
        .generate(&models());
        let span = reqs.last().unwrap().arrival_ms - reqs[0].arrival_ms;
        let mean_gap = span / (n - 1) as f64;
        // A burst of k simultaneous arrivals every gap ms averages to
        // gap / k per request.
        let expected = gap_ms / burst_size as f64;
        assert!(
            (mean_gap - expected).abs() < 0.01 * expected,
            "bursty mean gap {mean_gap} vs expected {expected}"
        );
    }

    #[test]
    fn steady_arrivals_are_evenly_spaced() {
        let reqs = spec(ArrivalPattern::Steady { interval_ms: 50.0 }).generate(&models());
        for (i, r) in reqs.iter().enumerate() {
            assert!((r.arrival_ms - 50.0 * i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn bursts_share_arrival_instants() {
        let reqs = spec(ArrivalPattern::Bursty {
            burst_size: 4,
            gap_ms: 1000.0,
        })
        .generate(&models());
        assert_eq!(reqs[0].arrival_ms, reqs[3].arrival_ms);
        assert_eq!(reqs[4].arrival_ms, 1000.0);
    }

    #[test]
    fn poisson_arrivals_are_monotone() {
        let reqs = spec(ArrivalPattern::Poisson {
            mean_interval_ms: 10.0,
        })
        .generate(&models());
        for pair in reqs.windows(2) {
            assert!(pair[1].arrival_ms >= pair[0].arrival_ms);
        }
    }

    #[test]
    fn tenants_and_priorities_stay_in_range() {
        let reqs = spec(ArrivalPattern::Steady { interval_ms: 1.0 }).generate(&models());
        for r in &reqs {
            assert!(r.priority < 3);
            assert!(r.tenant.starts_with("tenant-"));
        }
    }
}
