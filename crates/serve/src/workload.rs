//! Deterministic seeded workload generation.
//!
//! The serving benchmarks sweep arrival *patterns* × policies × fleet sizes;
//! every pattern here is a pure function of its seed (SplitMix64, the
//! workspace's offline PRNG), so two runs of the same spec produce identical
//! request lists and every serving experiment is reproducible.

use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_gpu_sim::FaultPlan;
use flashmem_graph::ModelSpec;

use crate::request::ServeRequest;

/// How request arrival times are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// One request every `interval_ms` — a steady camera-pipeline cadence.
    Steady {
        /// Fixed gap between consecutive arrivals.
        interval_ms: f64,
    },
    /// Exponentially distributed gaps with the given mean — open-loop user
    /// traffic.
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_interval_ms: f64,
    },
    /// Bursts of `burst_size` simultaneous arrivals separated by `gap_ms` —
    /// the notification-fan-out worst case.
    Bursty {
        /// Requests per burst.
        burst_size: usize,
        /// Gap between bursts.
        gap_ms: f64,
    },
    /// Steady background traffic with one flash crowd: the `crowd_size`
    /// requests starting at index `crowd_index` all land at the same
    /// instant, then the steady cadence resumes from that instant — the
    /// overload-survival worst case (a push notification, a viral link).
    FlashCrowd {
        /// Gap between consecutive background arrivals.
        base_interval_ms: f64,
        /// Index of the first request in the crowd.
        crowd_index: usize,
        /// Number of simultaneous crowd arrivals (at least 1).
        crowd_size: usize,
    },
    /// Sinusoidal arrival-rate sweep: consecutive gaps ramp between
    /// `off_peak_interval_ms` (trough traffic) and `peak_interval_ms` (peak
    /// traffic) with period `period_ms` — a diurnal load curve whose peak
    /// can be provisioned past fleet capacity while the trough idles it.
    Diurnal {
        /// Gap between arrivals at the trough of the cycle.
        off_peak_interval_ms: f64,
        /// Gap between arrivals at the peak of the cycle.
        peak_interval_ms: f64,
        /// Length of one full trough → peak → trough cycle.
        period_ms: f64,
    },
}

impl ArrivalPattern {
    /// Short name used in tables and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Steady { .. } => "steady",
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Bursty { .. } => "bursty",
            ArrivalPattern::FlashCrowd { .. } => "flash-crowd",
            ArrivalPattern::Diurnal { .. } => "diurnal",
        }
    }

    /// Arrival time of request `index` given the previous arrival.
    fn next_arrival(&self, previous_ms: f64, index: usize, rng: &mut SplitMix64) -> f64 {
        match self {
            ArrivalPattern::Steady { interval_ms } => {
                if index == 0 {
                    0.0
                } else {
                    previous_ms + interval_ms.max(0.0)
                }
            }
            ArrivalPattern::Poisson { mean_interval_ms } => {
                if index == 0 {
                    0.0
                } else {
                    // Inverse-CDF exponential gap; clamp the uniform away from
                    // 1.0 so ln() stays finite.
                    let u = rng.gen_f64().min(1.0 - 1e-12);
                    previous_ms + mean_interval_ms.max(0.0) * (-(1.0 - u).ln())
                }
            }
            ArrivalPattern::Bursty { burst_size, gap_ms } => {
                let burst = (*burst_size).max(1);
                (index / burst) as f64 * gap_ms.max(0.0)
            }
            ArrivalPattern::FlashCrowd {
                base_interval_ms,
                crowd_index,
                crowd_size,
            } => {
                if index == 0 {
                    0.0
                } else if index > *crowd_index && index < crowd_index + (*crowd_size).max(1) {
                    // Later crowd members pile onto the first one's instant.
                    previous_ms
                } else {
                    previous_ms + base_interval_ms.max(0.0)
                }
            }
            ArrivalPattern::Diurnal {
                off_peak_interval_ms,
                peak_interval_ms,
                period_ms,
            } => {
                if index == 0 {
                    0.0
                } else {
                    let period = period_ms.max(1e-9);
                    let phase = (previous_ms / period) * std::f64::consts::TAU;
                    // 0 at the trough of the cycle, 1 at its peak.
                    let ramp = 0.5 * (1.0 - phase.cos());
                    let off_peak = off_peak_interval_ms.max(0.0);
                    let gap = off_peak + (peak_interval_ms.max(0.0) - off_peak) * ramp;
                    previous_ms + gap.max(0.0)
                }
            }
        }
    }
}

/// A reproducible serving workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Arrival-time pattern.
    pub pattern: ArrivalPattern,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct tenants (`tenant-0` … `tenant-{n-1}`).
    pub tenants: usize,
    /// Number of priority levels (priorities are drawn from `0..levels`).
    pub priority_levels: u8,
    /// PRNG seed — same seed, same workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the request list, drawing models round-robin-free (uniformly
    /// seeded) from `models`.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn generate(&self, models: &[ModelSpec]) -> Vec<ServeRequest> {
        assert!(!models.is_empty(), "workload needs at least one model");
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let tenants = self.tenants.max(1);
        let levels = self.priority_levels.max(1);
        let mut arrival = 0.0;
        let mut requests = Vec::with_capacity(self.requests);
        for index in 0..self.requests {
            arrival = self.pattern.next_arrival(arrival, index, &mut rng);
            let model =
                models[rng.gen_range_inclusive(0, models.len() as u64 - 1) as usize].clone();
            let tenant = format!("tenant-{}", rng.gen_range_inclusive(0, tenants as u64 - 1));
            let priority = rng.gen_range_inclusive(0, u64::from(levels) - 1) as u8;
            requests.push(ServeRequest {
                model,
                tenant,
                priority,
                arrival_ms: arrival,
                deadline_ms: None,
                decode: None,
            });
        }
        requests
    }
}

/// A reproducible *generative* workload: every request carries prompt and
/// output token counts drawn uniformly from the configured ranges, so it is
/// served through the continuous-batching decode path
/// ([`DecodeEngine`](crate::DecodeEngine)) rather than as a one-shot pass.
///
/// Kept separate from [`WorkloadSpec`] because decode workloads have their
/// own knobs (token ranges) and their own model constraint (every model must
/// carry a [`DecodeSpec`](flashmem_graph::models::DecodeSpec)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeWorkloadSpec {
    /// Arrival-time pattern.
    pub pattern: ArrivalPattern,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct tenants (`tenant-0` … `tenant-{n-1}`).
    pub tenants: usize,
    /// Inclusive range prompt token counts are drawn from (clamped ≥ 1).
    pub prompt_tokens: (u32, u32),
    /// Inclusive range output token counts are drawn from (clamped ≥ 1).
    pub output_tokens: (u32, u32),
    /// PRNG seed — same seed, same workload.
    pub seed: u64,
}

impl DecodeWorkloadSpec {
    /// Generate the request list. Models are drawn uniformly from `models`;
    /// each request carries decode token counts drawn from the configured
    /// ranges.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or any model lacks a decode spec — a
    /// decode workload over a non-autoregressive model is a programming
    /// error, not a runtime condition.
    pub fn generate(&self, models: &[ModelSpec]) -> Vec<ServeRequest> {
        assert!(
            !models.is_empty(),
            "decode workload needs at least one model"
        );
        for model in models {
            assert!(
                model.decode().is_some(),
                "model {} has no decode spec; decode workloads need autoregressive models",
                model.abbr
            );
        }
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let tenants = self.tenants.max(1);
        let (prompt_lo, prompt_hi) = range_clamped(self.prompt_tokens);
        let (output_lo, output_hi) = range_clamped(self.output_tokens);
        let mut arrival = 0.0;
        let mut requests = Vec::with_capacity(self.requests);
        for index in 0..self.requests {
            arrival = self.pattern.next_arrival(arrival, index, &mut rng);
            let model =
                models[rng.gen_range_inclusive(0, models.len() as u64 - 1) as usize].clone();
            let tenant = format!("tenant-{}", rng.gen_range_inclusive(0, tenants as u64 - 1));
            let prompt = rng.gen_range_inclusive(u64::from(prompt_lo), u64::from(prompt_hi)) as u32;
            let output = rng.gen_range_inclusive(u64::from(output_lo), u64::from(output_hi)) as u32;
            requests.push(
                ServeRequest::new(model, tenant)
                    .with_arrival_ms(arrival)
                    .with_decode_tokens(prompt, output),
            );
        }
        requests
    }
}

/// Clamp an inclusive `(lo, hi)` token range to at least 1 and re-order it
/// if inverted, so every spec produces a valid draw range.
fn range_clamped((lo, hi): (u32, u32)) -> (u32, u32) {
    let lo = lo.max(1);
    let hi = hi.max(lo);
    (lo, hi)
}

/// The adversarial overload scenarios behind the overload-survival tests and
/// the `overload` bench: deterministic request lists engineered to push a
/// fleet past saturation in four distinct ways. Every scenario scales its
/// request count with the fleet so the pressure per device stays adversarial
/// at any sweep size, and every request carries a deadline — most a
/// serveable budget, and every eighth one so tight that admission control
/// can prove it unmeetable before queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadScenario {
    /// Steady background traffic, then `2 × fleet` requests land at one
    /// instant. Bounded queues shed the tail of the crowd instead of
    /// admitting requests that would wait out their whole deadline.
    FlashCrowd,
    /// Sinusoidal arrival rate: the trough is easily absorbed, the peak is
    /// provisioned past fleet capacity.
    DiurnalRamp,
    /// One hot tenant submits three of every four requests in bursts —
    /// the fleet-wide tenant-cap stressor.
    HotTenant,
    /// Per-request cadence shrinks as the fleet grows, so total traffic
    /// ramps with fleet size while per-device load stays saturating.
    FleetRamp,
}

impl OverloadScenario {
    /// All four scenarios, in sweep order.
    pub fn all() -> [OverloadScenario; 4] {
        [
            OverloadScenario::FlashCrowd,
            OverloadScenario::DiurnalRamp,
            OverloadScenario::HotTenant,
            OverloadScenario::FleetRamp,
        ]
    }

    /// Short name used in tables and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            OverloadScenario::FlashCrowd => "flash-crowd",
            OverloadScenario::DiurnalRamp => "diurnal-ramp",
            OverloadScenario::HotTenant => "hot-tenant",
            OverloadScenario::FleetRamp => "fleet-ramp",
        }
    }

    /// The tenant name the hot-tenant scenario concentrates traffic on.
    pub const HOT_TENANT: &'static str = "tenant-hot";

    /// Generate the scenario's request list, scaled to `fleet_size` devices.
    /// Same seed, same workload — the generator is a pure function of its
    /// inputs, like everything else in this module.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn generate(self, models: &[ModelSpec], fleet_size: usize, seed: u64) -> Vec<ServeRequest> {
        let fleet = fleet_size.max(1);
        let spec = match self {
            OverloadScenario::FlashCrowd => WorkloadSpec {
                pattern: ArrivalPattern::FlashCrowd {
                    base_interval_ms: 400.0,
                    crowd_index: 2 * fleet,
                    crowd_size: 2 * fleet,
                },
                requests: 6 * fleet,
                tenants: 4,
                priority_levels: 2,
                seed,
            },
            OverloadScenario::DiurnalRamp => WorkloadSpec {
                pattern: ArrivalPattern::Diurnal {
                    off_peak_interval_ms: 800.0,
                    peak_interval_ms: 25.0,
                    period_ms: 20_000.0,
                },
                requests: 6 * fleet,
                tenants: 4,
                priority_levels: 2,
                seed,
            },
            OverloadScenario::HotTenant => WorkloadSpec {
                pattern: ArrivalPattern::Bursty {
                    burst_size: fleet.max(2),
                    gap_ms: 500.0,
                },
                requests: 6 * fleet,
                tenants: 4,
                priority_levels: 2,
                seed,
            },
            OverloadScenario::FleetRamp => WorkloadSpec {
                pattern: ArrivalPattern::Steady {
                    interval_ms: 200.0 / fleet as f64,
                },
                requests: 8 * fleet,
                tenants: 4,
                priority_levels: 2,
                seed,
            },
        };
        let mut requests = spec.generate(models);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0DD_BA11);
        for (index, request) in requests.iter_mut().enumerate() {
            if self == OverloadScenario::HotTenant && index % 4 != 3 {
                request.tenant = Self::HOT_TENANT.to_string();
            }
            request.deadline_ms = Some(if index % 8 == 7 {
                // Provably unmeetable: no model in the zoo replays in 1 ms.
                1.0
            } else {
                2_500.0 + rng.gen_f64() * 2_500.0
            });
        }
        requests
    }
}

/// The fault scenarios behind the recovery tests and the `chaos` bench:
/// each pairs a deterministic workload with a seeded [`FaultPlan`], so the
/// same scenario can be replayed unprotected (faults become typed failures)
/// and protected (a [`RecoveryControl`](crate::RecoveryControl) retries,
/// fails over, and quarantines). Fault firing is keyed by
/// `(device, seq, command)` — schedule-independent — so both arms see the
/// *same* faults and the comparison isolates the recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Steady traffic, then one device dies partway through the run and
    /// takes its in-flight and queued work with it.
    DeviceLoss,
    /// One device fires transient kernel faults on a noticeable fraction of
    /// commands — the retry-budget and circuit-breaker stressor.
    FlakyDevice,
    /// A correlated burst: half the fleet turns flaky at once while one
    /// device also spikes spurious OOMs, modelling a shared-cause brownout.
    CorrelatedBurst,
    /// The overload flash-crowd with a device loss landing inside the
    /// crowd — recovery under pressure, where failover targets are already
    /// saturated.
    FaultUnderFlashCrowd,
}

impl ChaosScenario {
    /// All four scenarios, in sweep order.
    pub fn all() -> [ChaosScenario; 4] {
        [
            ChaosScenario::DeviceLoss,
            ChaosScenario::FlakyDevice,
            ChaosScenario::CorrelatedBurst,
            ChaosScenario::FaultUnderFlashCrowd,
        ]
    }

    /// Short name used in tables and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::DeviceLoss => "device-loss",
            ChaosScenario::FlakyDevice => "flaky-device",
            ChaosScenario::CorrelatedBurst => "correlated-burst",
            ChaosScenario::FaultUnderFlashCrowd => "fault-under-flash-crowd",
        }
    }

    /// Generate the scenario's request list, scaled to `fleet_size` devices.
    /// Deadlines are generous but real, so attainment distinguishes "finished
    /// late after three retries" from "finished on time".
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn generate(self, models: &[ModelSpec], fleet_size: usize, seed: u64) -> Vec<ServeRequest> {
        let fleet = fleet_size.max(1);
        let spec = match self {
            ChaosScenario::FaultUnderFlashCrowd => WorkloadSpec {
                pattern: ArrivalPattern::FlashCrowd {
                    base_interval_ms: 400.0,
                    crowd_index: 2 * fleet,
                    crowd_size: 2 * fleet,
                },
                requests: 6 * fleet,
                tenants: 4,
                priority_levels: 2,
                seed,
            },
            _ => WorkloadSpec {
                pattern: ArrivalPattern::Steady {
                    interval_ms: 300.0 / fleet as f64,
                },
                requests: 6 * fleet,
                tenants: 4,
                priority_levels: 2,
                seed,
            },
        };
        let mut requests = spec.generate(models);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC4A0_5BAD);
        for request in &mut requests {
            request.deadline_ms = Some(4_000.0 + rng.gen_f64() * 4_000.0);
        }
        requests
    }

    /// The scenario's seeded fault plan, scaled to `fleet_size` devices.
    /// Faulty device indices are fixed per scenario (not drawn), so the same
    /// scenario stresses the same fleet slots at every seed and the sweep's
    /// protected-vs-unprotected delta is attributable to recovery alone.
    pub fn fault_plan(self, fleet_size: usize, seed: u64) -> FaultPlan {
        let fleet = fleet_size.max(1);
        let mut plan = FaultPlan::seeded(seed ^ 0xFA_017);
        match self {
            ChaosScenario::DeviceLoss => {
                plan = plan.with_device_loss(0, 1_200.0);
            }
            ChaosScenario::FlakyDevice => {
                plan = plan.with_flaky_device(fleet - 1, 0.35);
            }
            ChaosScenario::CorrelatedBurst => {
                for device in 0..fleet.div_ceil(2) {
                    plan = plan.with_flaky_device(device, 0.25);
                }
                plan = plan.with_oom_spikes(0, 0.15);
            }
            ChaosScenario::FaultUnderFlashCrowd => {
                // The crowd lands around `2 × fleet × 400 ms`; lose a device
                // right as it hits.
                plan = plan.with_device_loss(1 % fleet, 2.0 * fleet as f64 * 400.0);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn models() -> Vec<ModelSpec> {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    }

    fn spec(pattern: ArrivalPattern) -> WorkloadSpec {
        WorkloadSpec {
            pattern,
            requests: 12,
            tenants: 3,
            priority_levels: 3,
            seed: 42,
        }
    }

    fn all_patterns() -> Vec<ArrivalPattern> {
        vec![
            ArrivalPattern::Steady { interval_ms: 50.0 },
            ArrivalPattern::Poisson {
                mean_interval_ms: 100.0,
            },
            ArrivalPattern::Bursty {
                burst_size: 4,
                gap_ms: 1000.0,
            },
            ArrivalPattern::FlashCrowd {
                base_interval_ms: 100.0,
                crowd_index: 4,
                crowd_size: 5,
            },
            ArrivalPattern::Diurnal {
                off_peak_interval_ms: 200.0,
                peak_interval_ms: 10.0,
                period_ms: 1_000.0,
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = spec(ArrivalPattern::Poisson {
            mean_interval_ms: 100.0,
        });
        let a = s.generate(&models());
        let b = s.generate(&models());
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.model.abbr, y.model.abbr);
        }
        let other = WorkloadSpec { seed: 43, ..s }.generate(&models());
        assert!(a
            .iter()
            .zip(&other)
            .any(|(x, y)| x.arrival_ms != y.arrival_ms || x.tenant != y.tenant));
    }

    #[test]
    fn same_seed_reproduces_arrivals_across_every_pattern() {
        for pattern in all_patterns() {
            let s = spec(pattern);
            let a = s.generate(&models());
            let b = s.generate(&models());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_ms, y.arrival_ms, "{pattern:?}");
                assert_eq!(x.tenant, y.tenant, "{pattern:?}");
                assert_eq!(x.priority, y.priority, "{pattern:?}");
                assert_eq!(x.model.abbr, y.model.abbr, "{pattern:?}");
            }
            // Arrivals are non-negative and non-decreasing under every
            // pattern.
            let mut previous = 0.0;
            for r in &a {
                assert!(r.arrival_ms >= previous, "{pattern:?}");
                previous = r.arrival_ms;
            }
        }
    }

    #[test]
    fn poisson_mean_gap_matches_the_configured_rate() {
        let mean_interval_ms = 120.0;
        let n = 4000;
        let reqs = WorkloadSpec {
            pattern: ArrivalPattern::Poisson { mean_interval_ms },
            requests: n,
            tenants: 2,
            priority_levels: 2,
            seed: 0x00A1_1CE5,
        }
        .generate(&models());
        let span = reqs.last().unwrap().arrival_ms - reqs[0].arrival_ms;
        let mean_gap = span / (n - 1) as f64;
        // Exponential gaps: the sample mean over 4k draws lands within 10%
        // of the configured mean.
        assert!(
            (mean_gap - mean_interval_ms).abs() < 0.1 * mean_interval_ms,
            "poisson mean gap {mean_gap} vs configured {mean_interval_ms}"
        );
    }

    #[test]
    fn bursty_mean_gap_matches_the_configured_rate() {
        let (burst_size, gap_ms) = (4, 800.0);
        let n = 4000;
        let reqs = WorkloadSpec {
            pattern: ArrivalPattern::Bursty { burst_size, gap_ms },
            requests: n,
            tenants: 2,
            priority_levels: 2,
            seed: 7,
        }
        .generate(&models());
        let span = reqs.last().unwrap().arrival_ms - reqs[0].arrival_ms;
        let mean_gap = span / (n - 1) as f64;
        // A burst of k simultaneous arrivals every gap ms averages to
        // gap / k per request.
        let expected = gap_ms / burst_size as f64;
        assert!(
            (mean_gap - expected).abs() < 0.01 * expected,
            "bursty mean gap {mean_gap} vs expected {expected}"
        );
    }

    #[test]
    fn steady_arrivals_are_evenly_spaced() {
        let reqs = spec(ArrivalPattern::Steady { interval_ms: 50.0 }).generate(&models());
        for (i, r) in reqs.iter().enumerate() {
            assert!((r.arrival_ms - 50.0 * i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn bursts_share_arrival_instants() {
        let reqs = spec(ArrivalPattern::Bursty {
            burst_size: 4,
            gap_ms: 1000.0,
        })
        .generate(&models());
        assert_eq!(reqs[0].arrival_ms, reqs[3].arrival_ms);
        assert_eq!(reqs[4].arrival_ms, 1000.0);
    }

    #[test]
    fn poisson_arrivals_are_monotone() {
        let reqs = spec(ArrivalPattern::Poisson {
            mean_interval_ms: 10.0,
        })
        .generate(&models());
        for pair in reqs.windows(2) {
            assert!(pair[1].arrival_ms >= pair[0].arrival_ms);
        }
    }

    #[test]
    fn flash_crowd_piles_onto_one_instant_then_resumes_the_cadence() {
        let reqs = spec(ArrivalPattern::FlashCrowd {
            base_interval_ms: 100.0,
            crowd_index: 4,
            crowd_size: 5,
        })
        .generate(&models());
        // Background cadence before the crowd.
        assert_eq!(reqs[1].arrival_ms, 100.0);
        assert_eq!(reqs[3].arrival_ms, 300.0);
        // The whole crowd shares the first member's instant…
        for member in &reqs[4..9] {
            assert_eq!(member.arrival_ms, 400.0);
        }
        // …and the cadence resumes from it.
        assert_eq!(reqs[9].arrival_ms, 500.0);
    }

    #[test]
    fn diurnal_gaps_ramp_between_off_peak_and_peak() {
        let reqs = WorkloadSpec {
            pattern: ArrivalPattern::Diurnal {
                off_peak_interval_ms: 200.0,
                peak_interval_ms: 10.0,
                period_ms: 1_000.0,
            },
            requests: 64,
            tenants: 2,
            priority_levels: 2,
            seed: 9,
        }
        .generate(&models());
        let gaps: Vec<f64> = reqs
            .windows(2)
            .map(|w| w[1].arrival_ms - w[0].arrival_ms)
            .collect();
        let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        let max = gaps.iter().copied().fold(0.0_f64, f64::max);
        // Every gap stays inside the configured envelope, and the cycle
        // actually visits both ends of it.
        assert!(
            min >= 10.0 - 1e-9 && max <= 200.0 + 1e-9,
            "gaps in [{min}, {max}]"
        );
        assert!(min < 30.0, "peak rate never reached: min gap {min}");
        assert!(max > 150.0, "trough rate never reached: max gap {max}");
    }

    #[test]
    fn overload_scenarios_are_deterministic_and_deadline_carrying() {
        for scenario in OverloadScenario::all() {
            let a = scenario.generate(&models(), 4, 11);
            let b = scenario.generate(&models(), 4, 11);
            assert!(!a.is_empty(), "{scenario:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_ms, y.arrival_ms, "{scenario:?}");
                assert_eq!(x.tenant, y.tenant, "{scenario:?}");
                assert_eq!(x.deadline_ms, y.deadline_ms, "{scenario:?}");
            }
            // Every request carries a deadline; some are provably
            // unmeetable (the admission-control stressor).
            assert!(a.iter().all(|r| r.deadline_ms.is_some()), "{scenario:?}");
            assert!(
                a.iter().any(|r| r.deadline_ms == Some(1.0)),
                "{scenario:?} lacks unmeetable deadlines"
            );
        }
    }

    #[test]
    fn hot_tenant_scenario_concentrates_traffic() {
        let reqs = OverloadScenario::HotTenant.generate(&models(), 4, 3);
        let hot = reqs
            .iter()
            .filter(|r| r.tenant == OverloadScenario::HOT_TENANT)
            .count();
        assert_eq!(hot, reqs.len() * 3 / 4, "3 of every 4 requests are hot");
    }

    #[test]
    fn fleet_ramp_scales_request_count_with_fleet_size() {
        let small = OverloadScenario::FleetRamp.generate(&models(), 2, 5);
        let large = OverloadScenario::FleetRamp.generate(&models(), 8, 5);
        assert_eq!(small.len() * 4, large.len());
        // Larger fleets see a proportionally tighter cadence: same total
        // span, more arrivals.
        let span = |reqs: &[ServeRequest]| reqs.last().unwrap().arrival_ms;
        assert!((span(&small) - span(&large)).abs() / span(&small) < 0.1);
    }

    #[test]
    fn decode_workload_is_deterministic_and_in_range() {
        let spec = DecodeWorkloadSpec {
            pattern: ArrivalPattern::Steady { interval_ms: 40.0 },
            requests: 16,
            tenants: 3,
            prompt_tokens: (4, 32),
            output_tokens: (2, 16),
            seed: 0x00DE_C0DE,
        };
        let models = vec![ModelZoo::gptneo_small(), ModelZoo::whisper_medium()];
        let a = spec.generate(&models);
        let b = spec.generate(&models);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.decode, y.decode);
            assert_eq!(x.model.abbr, y.model.abbr);
            let d = x
                .decode
                .expect("decode workload requests carry token counts");
            assert!((4..=32).contains(&d.prompt_tokens));
            assert!((2..=16).contains(&d.output_tokens));
        }
        let other = DecodeWorkloadSpec {
            seed: 0x00DE_C1DE,
            ..spec
        }
        .generate(&models);
        assert!(a.iter().zip(&other).any(|(x, y)| x.decode != y.decode));
    }

    #[test]
    fn decode_workload_clamps_inverted_and_zero_ranges() {
        let spec = DecodeWorkloadSpec {
            pattern: ArrivalPattern::Steady { interval_ms: 1.0 },
            requests: 8,
            tenants: 1,
            prompt_tokens: (9, 3),
            output_tokens: (0, 0),
            seed: 1,
        };
        let reqs = spec.generate(&[ModelZoo::gptneo_small()]);
        for r in &reqs {
            let d = r.decode.unwrap();
            assert!((3..=9).contains(&d.prompt_tokens));
            assert_eq!(d.output_tokens, 1);
        }
    }

    #[test]
    #[should_panic(expected = "no decode spec")]
    fn decode_workload_rejects_non_autoregressive_models() {
        DecodeWorkloadSpec {
            pattern: ArrivalPattern::Steady { interval_ms: 1.0 },
            requests: 1,
            tenants: 1,
            prompt_tokens: (4, 8),
            output_tokens: (2, 4),
            seed: 1,
        }
        .generate(&[ModelZoo::vit()]);
    }

    #[test]
    fn tenants_and_priorities_stay_in_range() {
        let reqs = spec(ArrivalPattern::Steady { interval_ms: 1.0 }).generate(&models());
        for r in &reqs {
            assert!(r.priority < 3);
            assert!(r.tenant.starts_with("tenant-"));
        }
    }

    #[test]
    fn chaos_scenarios_are_deterministic_and_carry_deadlines() {
        for scenario in ChaosScenario::all() {
            let a = scenario.generate(&models(), 4, 11);
            let b = scenario.generate(&models(), 4, 11);
            assert!(!a.is_empty(), "{scenario:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_ms, y.arrival_ms, "{scenario:?}");
                assert_eq!(x.deadline_ms, y.deadline_ms, "{scenario:?}");
            }
            assert!(a.iter().all(|r| r.deadline_ms.is_some()), "{scenario:?}");
        }
    }

    #[test]
    fn chaos_fault_plans_are_non_empty_and_reproducible() {
        for scenario in ChaosScenario::all() {
            let plan = scenario.fault_plan(4, 7);
            assert!(!plan.is_empty(), "{scenario:?} injects nothing");
            let again = scenario.fault_plan(4, 7);
            // Same seed, same plan: a fixed probe key draws identically.
            assert_eq!(
                plan.command_fault(3, 5, 2, 0).map(|k| k.label()),
                again.command_fault(3, 5, 2, 0).map(|k| k.label()),
                "{scenario:?}"
            );
            assert_eq!(plan.device_loss_ms(0), again.device_loss_ms(0));
        }
        assert!(ChaosScenario::DeviceLoss
            .fault_plan(4, 7)
            .device_loss_ms(0)
            .is_some());
        assert!(ChaosScenario::FlakyDevice
            .fault_plan(4, 7)
            .device_loss_ms(0)
            .is_none());
    }
}
