//! The multi-tenant serving engine: a hand-rolled (tokio-free) discrete
//! event loop that time-shares each device's dual command queues across many
//! in-flight inferences.
//!
//! ## How time advances
//!
//! Every admitted request owns a [`StreamStepper`] over its lowered command
//! stream. Devices are independent timelines; on each device the loop
//! repeatedly (1) preempts in-flight work if the policy allows and a waiting
//! request outranks it, (2) admits arrived requests into free slots in
//! policy order, then (3) advances whichever in-flight stepper can start its
//! next command earliest on the shared [`QueueClocks`]. One inference's disk
//! loads therefore fill transfer-queue gaps left by another inference's
//! kernels — per-layer interleaving, not back-to-back replay.
//!
//! ## How the fleet advances
//!
//! Device timelines share nothing but the plan cache, so
//! [`ServeEngine::run`] fans them out on the process-wide work-stealing
//! [`ThreadPool`] in three strictly ordered
//! stages:
//!
//! 1. **Placement prologue (sequential).** [`SchedulePolicy::place`] assigns
//!    every request to a device on the caller thread, in submission order —
//!    placement may depend on global request order, so it never races.
//!    Each device's assignment becomes one `DeviceJob` (private) with its runtime
//!    ([`FlashMem`]) and simulator ([`GpuSimulator`]) constructed once here,
//!    not once per request.
//! 2. **Parallel device stepping.** Each `DeviceJob` runs `run_device` as
//!    one pool job. Workers share the engine's [`ArtifactCache`], whose
//!    in-flight compile dedup guarantees N devices serving one tenant config
//!    solve LC-OPG exactly once with schedule-independent hit/miss counters.
//!    A job that panics (a buggy policy) is caught on its worker and
//!    surfaced as [`SimError::WorkerPanic`]; errors propagate by device
//!    index, so failure behaviour matches `--threads 1` exactly.
//! 3. **Ordered merge (the commit point).** Device reports land in
//!    fleet-index slots and per-request outcomes are re-sorted by submission
//!    `seq`, so the merged [`ServeReport`] is byte-identical to the serial
//!    loop's no matter how the workers interleaved.
//!
//! `run` uses [`pool::global`] (width from `--threads N` /
//! `FLASHMEM_THREADS`); [`ServeEngine::run_on`] takes an explicit pool for
//! tests and `--threads 1` bisection. A nested call — a serve run already
//! inside a pool worker, e.g. one sweep cell of the bench — steps its fleet
//! inline on that worker, by the pool's no-nested-fan-out rule.
//!
//! ## Preemption
//!
//! Under a preemptive policy (one whose
//! [`SchedulePolicy::preemption`] returns a cost), a running inference can be
//! suspended at any command boundary: its [`StreamStepper`] is frozen into a
//! [`Suspension`] snapshot (queue clocks, in-flight command finish times,
//! resident-memory state) and its allocations are evicted so the
//! higher-priority request has the device to itself. Commands that were
//! already issued still drain — a dispatched kernel cannot be aborted, the
//! stream just stops issuing new work. When a slot frees up the suspended
//! request competes for admission again (at its original priority and
//! arrival, so FIFO tie-breaking favours it over younger work) and, on
//! resume, re-acquires the identical residency and pays the policy's
//! [`PreemptionCost`] before issuing its next command. The suspended
//! request's tenant-cap reservation is kept while suspended, so a tenant
//! cannot starve its own preempted work by submitting more requests.
//!
//! ## Exclusive mode and legacy equivalence
//!
//! When the policy allows a single in-flight inference and is not preemptive
//! (`max_in_flight() == 1`, e.g. [`FifoPolicy`]), each
//! request runs in run-local time against freshly reset queue clocks, its
//! memory-trace segment is stitched onto the device timeline, and its weights
//! are evicted before the next admission — the *identical* float arithmetic
//! of the legacy `MultiModelRunner::run_fifo`, which is why the FIFO policy
//! reproduces Figure 6 traces byte for byte (see `tests/scheduler.rs`).
//!
//! Under concurrent (and all preemptive) policies the device keeps one global
//! timeline (re-based only across idle gaps) and a shared memory tracker, and
//! a finished request's remaining allocations are released individually. The
//! tracker applies memory effects in event order, which the earliest-start
//! stepping rule keeps near time order; tiny reorderings across concurrent
//! streams are an accepted modelling artifact.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use flashmem_core::cache::{ArtifactCache, Fnv1a};
use flashmem_core::engine::CompiledArtifact;
use flashmem_core::executor::RUNTIME_OVERHEAD_BYTES;
use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::telemetry::{
    FleetTrace, PhaseBreakdown, TraceConfig, TraceKind, TraceLane, TraceRecorder,
};
use flashmem_core::{ExecutionReport, FlashMem, FlashMemConfig, KernelRewriter, StreamingExecutor};
use flashmem_gpu_sim::engine::{
    CommandStream, GpuSimulator, PreemptionCost, QueueClocks, QueueKind, SimConfig, StreamStepper,
    Suspension,
};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::{DeviceSpec, FaultKind, FaultPlan, SimError};
use flashmem_graph::ModelSpec;
use flashmem_profiler::LoweringOptions;

use crate::metrics::{
    DeviceReport, LatencySummary, PriorityLatency, RecoveryTallies, RequestOutcome, ServeReport,
    SloSummary, TokenMetrics,
};
use crate::policy::{
    FifoPolicy, InFlightEntry, OverloadControl, PendingEntry, PolicyContext, RecoveryControl,
    SchedulePolicy,
};
use crate::request::{FailureCause, RejectCause, ServeRequest};

const MIB: f64 = 1024.0 * 1024.0;

/// Lower a compiled artifact to the command stream the event loop steps.
///
/// Streaming artifacts reuse the [`StreamingExecutor`] lowering the one-shot
/// runtime uses; preload artifacts *are* command streams; naive plans lower
/// through the executor without kernel rewriting, as in the Figure 9 strawmen.
pub fn lower_artifact(
    artifact: &CompiledArtifact,
    model: &ModelSpec,
    device: &DeviceSpec,
    config: &FlashMemConfig,
) -> CommandStream {
    match artifact {
        CompiledArtifact::Streaming(compiled) => {
            let rewriter = if config.enable_kernel_rewriting {
                KernelRewriter::pipelined()
            } else {
                KernelRewriter::naive()
            };
            StreamingExecutor::new(device.clone(), rewriter.lowering_options())
                .with_embedded_transforms(config.enable_kernel_rewriting)
                .compile(model.graph(), &compiled.fusion, &compiled.plan)
        }
        CompiledArtifact::Preload(stream) => stream.clone(),
        CompiledArtifact::NaivePlan { fusion, plan } => {
            StreamingExecutor::new(device.clone(), LoweringOptions::texture_framework())
                .with_embedded_transforms(false)
                .compile(model.graph(), fusion, plan)
        }
    }
}

/// Estimated resident bytes of one in-flight request — the admission-control
/// quantity behind per-tenant memory caps. Runtime overhead + double-buffered
/// activations + everything the plan keeps resident, plus the largest
/// streamed weight as staging headroom.
pub fn estimate_resident_bytes(artifact: &CompiledArtifact, model: &ModelSpec) -> u64 {
    let base = RUNTIME_OVERHEAD_BYTES + (2 * model.graph().max_activation_bytes()).max(1);
    match artifact {
        CompiledArtifact::Streaming(compiled) => {
            base + plan_resident_bytes(compiled.plan.weights())
        }
        CompiledArtifact::NaivePlan { plan, .. } => base + plan_resident_bytes(plan.weights()),
        CompiledArtifact::Preload(stream) => {
            // No plan to consult: every allocation in the stream is an upper
            // bound on what can be live at once.
            base + stream
                .commands()
                .iter()
                .filter_map(|c| match &c.kind {
                    flashmem_gpu_sim::engine::CommandKind::Alloc { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .sum::<u64>()
        }
    }
}

/// Predicted uncontended service time of a compiled artifact on `device`:
/// the makespan of stepping its lowered command stream alone against idle
/// queues and an empty tracker. This is what laxity-driven policies
/// ([`LeastLaxityPolicy`](crate::LeastLaxityPolicy),
/// [`DeadlinePreemptivePolicy`](crate::DeadlinePreemptivePolicy)) use as the
/// estimated remaining service time of a request that has not started yet;
/// the engine computes it once per distinct model per device and scales it
/// by the remaining command fraction for partially executed streams.
///
/// Returns 0.0 for a stream that fails validation, and the makespan reached
/// so far if stepping fails mid-stream (e.g. the model alone exceeds the
/// device budget — admission will surface that as its own failure).
pub fn predicted_service_ms(
    artifact: &CompiledArtifact,
    model: &ModelSpec,
    device: &DeviceSpec,
    config: &FlashMemConfig,
) -> f64 {
    let stream = lower_artifact(artifact, model, device, config);
    let sim = GpuSimulator::new(device.clone(), SimConfig::default());
    let mut tracker = MemoryTracker::for_device(device);
    let mut clocks = QueueClocks::new();
    let Ok(mut stepper) = StreamStepper::new(stream) else {
        return 0.0;
    };
    while !stepper.is_done() {
        if stepper.step(&sim, &mut clocks, &mut tracker, 0.0).is_err() {
            break;
        }
    }
    stepper.makespan_ms()
}

fn plan_resident_bytes(weights: &[flashmem_core::WeightSchedule]) -> u64 {
    let preloaded: u64 = weights
        .iter()
        .filter(|w| w.preloaded)
        .map(|w| w.bytes)
        .sum();
    let largest_streamed = weights
        .iter()
        .filter(|w| !w.preloaded)
        .map(|w| w.bytes)
        .max()
        .unwrap_or(0);
    preloaded + largest_streamed
}

/// The scheduler-visible view of everything that could be admitted at `now`:
/// pending requests that have arrived, plus every suspended request (a
/// suspended request arrived before it was first admitted, by construction).
/// Both the admission phase and the preemption phase rank exactly this list,
/// so a preemption can only fire for a candidate admission would pick.
///
/// `gate`, when present, restricts pending candidates to requests that have
/// already passed the bounded-queue shed check (`Some` only when a queue
/// bound is configured): an arrival the loop has not yet observed might be
/// about to be shed, and must not trigger a preemption first.
fn arrived_candidates(
    pending: &[(usize, &ServeRequest)],
    suspended: &[Suspended],
    now: f64,
    deadlines: &HashMap<usize, Option<f64>>,
    estimates: &HashMap<usize, f64>,
    gate: Option<&HashSet<usize>>,
) -> Vec<PendingEntry> {
    let mut candidates: Vec<PendingEntry> = pending
        .iter()
        .filter(|(seq, r)| r.arrival_ms <= now && gate.is_none_or(|g| g.contains(seq)))
        .map(|(seq, r)| PendingEntry {
            seq: *seq,
            priority: r.priority,
            arrival_ms: r.arrival_ms,
            deadline_ms: deadlines.get(seq).copied().flatten(),
            estimated_remaining_ms: estimates.get(seq).copied().unwrap_or(0.0),
        })
        .collect();
    candidates.extend(
        suspended
            .iter()
            .filter(|s| s.ready_ms <= now)
            .map(|s| PendingEntry {
                seq: s.meta.seq,
                priority: s.meta.priority,
                arrival_ms: s.meta.arrival_ms,
                deadline_ms: s.meta.absolute_deadline_ms(),
                estimated_remaining_ms: s.meta.estimated_remaining_ms(s.suspension.remaining()),
            }),
    );
    candidates
}

/// Everything the loop knows about an admitted request except its execution
/// state — shared between the in-flight and suspended representations.
/// `Clone` exists for the chaos path, which snapshots the meta of work
/// stranded by a device loss so the recovery planner can either resume it
/// elsewhere or finalize its typed-failure outcome.
#[derive(Clone)]
struct FlightMeta {
    seq: usize,
    abbr: String,
    tenant: String,
    priority: u8,
    arrival_ms: f64,
    deadline_ms: Option<f64>,
    start_ms: f64,
    cache_hit: bool,
    streamed_fraction: f64,
    estimate_bytes: u64,
    /// Predicted uncontended service time of the whole stream (0.0 when the
    /// policy does not use estimates).
    predicted_ms: f64,
    /// Command count of the lowered stream, for scaling `predicted_ms` to
    /// a partially executed remainder.
    total_commands: usize,
    /// Laxity at admission: absolute deadline − start − predicted service.
    admission_laxity_ms: Option<f64>,
    /// Home device index when the steal planner re-placed this request.
    stolen_from: Option<usize>,
    /// Injected-fault retries this request has already consumed (carried
    /// across chaos rounds; 0 outside the chaos path).
    retries: u32,
    /// True when the recovery planner re-placed this request off a lost or
    /// quarantined device (false outside the chaos path).
    failed_over: bool,
    trace_start: usize,
    order: usize,
    preemptions: usize,
    suspended_ms: f64,
    penalty_ms: f64,
    /// Global time at which the current running segment began (admission or
    /// last resume, after any reload penalty) — the open edge of the event
    /// trace's `Running` span.
    run_start_ms: f64,
    /// This request's own transfer-queue command intervals, in stream-local
    /// (epoch-relative) time. Per-queue commands never overlap, so phase
    /// attribution can union them directly.
    transfer_intervals: Vec<(f64, f64)>,
    /// This request's own compute-queue command intervals, stream-local.
    compute_intervals: Vec<(f64, f64)>,
}

impl FlightMeta {
    /// Absolute deadline on the device clock, if the request carries one.
    fn absolute_deadline_ms(&self) -> Option<f64> {
        self.deadline_ms.map(|d| self.arrival_ms + d)
    }

    /// Predicted service time still ahead of a stream with `remaining`
    /// commands left: the whole-stream prediction scaled by the unexecuted
    /// command fraction.
    fn estimated_remaining_ms(&self, remaining: usize) -> f64 {
        if self.total_commands == 0 {
            0.0
        } else {
            self.predicted_ms * remaining as f64 / self.total_commands as f64
        }
    }
    /// Build the outcome row for this request, completing (or failing) at
    /// `completion_ms`.
    fn into_outcome(
        self,
        device: &str,
        device_index: usize,
        completion_ms: f64,
        peak_memory_mb: f64,
        error: Option<SimError>,
        report: Option<ExecutionReport>,
    ) -> RequestOutcome {
        let queue_wait_ms = (self.start_ms - self.arrival_ms).max(0.0);
        let latency_ms = (completion_ms - self.arrival_ms).max(0.0);
        // Compile time is 0.0 on the simulated clock (LC-OPG solves are
        // charged to host wall time, not device time); suspension includes
        // the re-residency penalties; the residual stall term makes the
        // phases sum to the latency exactly.
        let phases = PhaseBreakdown::attribute(
            latency_ms,
            queue_wait_ms,
            0.0,
            self.suspended_ms + self.penalty_ms,
            &self.transfer_intervals,
            &self.compute_intervals,
        );
        RequestOutcome {
            seq: self.seq,
            model: self.abbr,
            tenant: self.tenant,
            priority: self.priority,
            device: device.to_string(),
            device_index,
            arrival_ms: self.arrival_ms,
            start_ms: self.start_ms,
            completion_ms,
            queue_wait_ms,
            latency_ms,
            deadline_ms: self.deadline_ms,
            admission_laxity_ms: self.admission_laxity_ms,
            resident_estimate_bytes: self.estimate_bytes,
            preemptions: self.preemptions,
            suspended_ms: self.suspended_ms,
            resume_penalty_ms: self.penalty_ms,
            cache_hit: self.cache_hit,
            peak_memory_mb,
            phases,
            rejected: None,
            stolen_from: self.stolen_from,
            failure: error.as_ref().map(FailureCause::from_error),
            retries: self.retries,
            failed_over: self.failed_over,
            error,
            report,
            decode: None,
        }
    }
}

/// One admitted, in-flight request on a device.
struct InFlight {
    meta: FlightMeta,
    stepper: StreamStepper,
}

/// A preempted request waiting for a slot (and its residency) to come back.
struct Suspended {
    meta: FlightMeta,
    /// Global (device-timeline) time at which the request was suspended.
    suspended_at_ms: f64,
    suspension: Suspension,
    /// Earliest global time this suspension may resume. `NEG_INFINITY`
    /// (always ready) for ordinary preemptions; the recovery planner's
    /// backoff floor for suspensions failed over from a lost device.
    ready_ms: f64,
}

/// One device timeline's unit of parallel work: everything `run_device`
/// needs, assembled by the sequential placement prologue so the hot loop on
/// the worker never constructs per-device state. The runtime and simulator
/// are built once per device here and reused across all of the device's
/// requests (and every command boundary of the preemption phase).
struct DeviceJob<'a> {
    /// Index of the device in the fleet (also the report's slot).
    index: usize,
    device: &'a DeviceSpec,
    /// The FlashMem runtime the device's compiles go through.
    engine: FlashMem,
    /// The cost model the device's command streams are stepped against.
    sim: GpuSimulator,
    /// `(seq, request)` pairs placed on this device, in submission order.
    assigned: Vec<(usize, &'a ServeRequest)>,
    /// Requests admission control rejected in the sequential prologue, with
    /// their (provably negative) best-case laxity. Their outcomes and trace
    /// instants are emitted by this device so the ordered merge stays the
    /// only commit point.
    prerejected: Vec<(usize, &'a ServeRequest, f64)>,
    /// For requests the steal planner re-placed here: `seq → home device`.
    stolen: HashMap<usize, usize>,
    /// Plan-cache keys (of this device's assigned models) that were already
    /// compiled when the run began. Snapshotted in the sequential prologue so
    /// each outcome's `cache_hit` flag is identical at every pool width —
    /// the racy alternative, reporting whether `ArtifactCache::compile`
    /// happened to find the key warm mid-run, would record which worker won
    /// the compile race rather than anything about the workload.
    warm: HashSet<u64>,
}

/// Render a caught panic payload for [`SimError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-request state the chaos driver carries across re-dispatch rounds.
/// Re-dispatched requests are cloned with their arrival bumped to the
/// recovery planner's ready floor; the carry remembers the *original*
/// arrival (so latency and SLO accounting measure from true submission) and
/// the recovery counters consumed so far.
#[derive(Clone, Copy)]
struct ServeCarry {
    original_arrival_ms: f64,
    retries: u32,
    hops: u32,
    failed_over: bool,
    stolen_from: Option<usize>,
}

impl ServeCarry {
    fn fresh(request: &ServeRequest, stolen_from: Option<usize>) -> Self {
        ServeCarry {
            original_arrival_ms: request.arrival_ms,
            retries: 0,
            hops: 0,
            failed_over: false,
            stolen_from,
        }
    }

    /// Attempt ordinal fed into the fault plan's per-command draw key, so a
    /// retried command is re-drawn instead of deterministically re-faulting.
    fn attempt(&self) -> u32 {
        self.retries + self.hops
    }
}

/// A suspension the recovery planner failed over onto this device: seeded
/// into the device loop's `suspended` list at round start so the ordinary
/// resume path re-acquires its residency (and pays the reload penalty).
struct SeededSuspension {
    meta: FlightMeta,
    suspension: Suspension,
    /// Global time the work was stranded (the device-loss instant) — the
    /// start of its `Suspended` span on the destination device.
    suspended_at_ms: f64,
    /// Backoff floor: earliest global time the resume may happen.
    ready_ms: f64,
}

/// The chaos side-channel of one `DeviceJob`: per-request carries and
/// failed-over suspensions, assembled sequentially by the round planner.
struct ServeChaosJob {
    carry: HashMap<usize, ServeCarry>,
    seeds: Vec<SeededSuspension>,
}

/// A request an injected fault knocked out of a chaos round, awaiting a
/// sequential recovery decision (retry, failover, or final typed failure).
struct ServeOrphan {
    /// The typed-failure outcome of this attempt — final if the planner
    /// gives up, discarded if the request is re-dispatched.
    outcome: RequestOutcome,
    /// What fired.
    kind: FaultKind,
    /// Recovery counters *before* this round's decision.
    retries: u32,
    hops: u32,
    /// In-flight state snapshotted at a device loss, resumable on a
    /// same-spec sibling.
    resume: Option<(FlightMeta, Suspension)>,
}

/// Everything one `run_device` round hands back to the merge point.
struct DeviceRun {
    outcomes: Vec<RequestOutcome>,
    report: DeviceReport,
    trace: TraceRecorder,
    orphans: Vec<ServeOrphan>,
    /// True when the fault plan's device loss fired this round: the device
    /// is gone for every later round.
    lost: bool,
    /// Transient injected faults (kernel + OOM-spike) this round, for the
    /// quarantine circuit breaker.
    faults: u32,
}

/// Per-device health as tracked by the sequential recovery planner.
#[derive(Clone, Copy, PartialEq)]
enum Health {
    Healthy,
    /// Device loss fired: permanent.
    Lost,
    /// Circuit breaker open since `since_ms`; `probing` marks the round a
    /// probe placement is in flight.
    Quarantined {
        since_ms: f64,
        probing: bool,
    },
}

/// A fleet-wide tenant cap: `bytes` of estimated resident memory across the
/// whole fleet, enforced without cross-device shared state by confining the
/// tenant to `shards` devices that each apply a `bytes / shards` sub-cap.
#[derive(Debug, Clone, Copy)]
struct FleetTenantCap {
    bytes: u64,
    shards: usize,
}

/// The multi-tenant serving engine over a fleet of simulated devices.
pub struct ServeEngine {
    fleet: Vec<DeviceSpec>,
    config: FlashMemConfig,
    policy: Box<dyn SchedulePolicy>,
    cache: Arc<ArtifactCache>,
    tenant_caps: HashMap<String, u64>,
    fleet_tenant_caps: HashMap<String, FleetTenantCap>,
    tenant_slos: HashMap<String, f64>,
    overload: OverloadControl,
    recovery: RecoveryControl,
    fault_plan: FaultPlan,
    trace: TraceConfig,
}

impl ServeEngine {
    /// A FIFO engine over `fleet` running FlashMem under `config`.
    ///
    /// An empty fleet is accepted here but rejected by [`run`](Self::run):
    /// silently substituting a default device would hide a configuration bug
    /// (and historically let `place(..).min(fleet_len - 1)` underflow).
    pub fn new(fleet: Vec<DeviceSpec>, config: FlashMemConfig) -> Self {
        ServeEngine {
            fleet,
            config,
            policy: Box::new(FifoPolicy),
            cache: Arc::new(ArtifactCache::new()),
            tenant_caps: HashMap::new(),
            fleet_tenant_caps: HashMap::new(),
            tenant_slos: HashMap::new(),
            overload: OverloadControl::disabled(),
            recovery: RecoveryControl::disabled(),
            fault_plan: FaultPlan::default(),
            trace: TraceConfig::disabled(),
        }
    }

    /// Inject deterministic faults from a seeded [`FaultPlan`] (builder
    /// style). The plan keys every per-command draw by `(device, seq,
    /// command, attempt)`, so which commands fault is independent of the
    /// scheduling policy, pool width and retry timing. An empty plan (the
    /// default) keeps the engine on the fault-free fast path, byte-identical
    /// to a build without fault injection.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Configure failure recovery (builder style): per-request retry budgets
    /// with simulated-time backoff, failover re-placement of work stranded
    /// by a device loss onto surviving devices (in-flight work is carried
    /// over as a [`Suspension`] and resumed on a same-spec sibling when one
    /// exists, paying the re-residency penalty; otherwise it restarts from
    /// scratch), and circuit-breaker quarantine with probe-based
    /// reinstatement. Everything is off by default
    /// ([`RecoveryControl::disabled`]), in which case the engine's behaviour
    /// is bit-identical to one without recovery.
    ///
    /// All recovery decisions are planned sequentially at round boundaries
    /// of the fan-out pipeline, so reports stay byte-identical at any pool
    /// width — including which requests retried, where failovers landed and
    /// when devices were quarantined or probed.
    pub fn with_recovery_control(mut self, recovery: RecoveryControl) -> Self {
        self.recovery = recovery;
        self
    }

    /// Configure event tracing (builder style). Off by default; when
    /// enabled, each device fills a ring-buffered [`TraceRecorder`] inside
    /// its `run_device` job and the ordered merge seals them into
    /// [`ServeReport::trace`]. Recording never perturbs the simulation: a
    /// traced report minus its `trace` field is byte-identical to an
    /// untraced run.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the scheduling policy (builder style).
    pub fn with_policy(mut self, policy: Box<dyn SchedulePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Share an existing plan cache (e.g. the benchmark harness's) instead of
    /// a private one.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Cap `tenant`'s estimated resident bytes per device. Requests that
    /// would exceed the cap wait for the tenant's in-flight work to finish;
    /// a request whose own working set exceeds the cap fails outright.
    pub fn with_tenant_cap(mut self, tenant: impl Into<String>, bytes: u64) -> Self {
        self.tenant_caps.insert(tenant.into(), bytes);
        self
    }

    /// Configure overload survival (builder style): bounded per-device
    /// queues, deadline admission control and the steal phase that re-places
    /// queued requests from backed-up shards onto idle ones. Everything is
    /// off by default ([`OverloadControl::disabled`]), in which case the
    /// engine's behaviour is bit-identical to one without overload control.
    pub fn with_overload_control(mut self, overload: OverloadControl) -> Self {
        self.overload = overload;
        self
    }

    /// Cap `tenant`'s estimated resident bytes across the **whole fleet**.
    /// The tenant is confined to `shards` devices (a stable hash of the
    /// tenant name picks which; clamped to the fleet size) and each shard
    /// enforces a `bytes / shards` sub-cap with the same real-state
    /// accounting as [`with_tenant_cap`](Self::with_tenant_cap) — so the
    /// tenant's summed resident reservations never exceed `bytes` at any
    /// instant, by construction, without any cross-device shared state
    /// (which is what keeps parallel device stepping deterministic). The
    /// steal planner respects the confinement: a fleet-capped tenant's
    /// requests are only ever re-placed within its shard set.
    pub fn with_fleet_tenant_cap(
        mut self,
        tenant: impl Into<String>,
        bytes: u64,
        shards: usize,
    ) -> Self {
        self.fleet_tenant_caps.insert(
            tenant.into(),
            FleetTenantCap {
                bytes,
                shards: shards.max(1),
            },
        );
        self
    }

    /// Give every request of `tenant` a default SLO deadline: a relative
    /// latency budget in milliseconds, used when the request does not carry
    /// its own [`deadline_ms`](ServeRequest::deadline_ms). Deadline-carrying
    /// requests feed the report's [`SloSummary`].
    pub fn with_tenant_slo(mut self, tenant: impl Into<String>, deadline_ms: f64) -> Self {
        self.tenant_slos.insert(tenant.into(), deadline_ms.max(0.0));
        self
    }

    /// The fleet being served.
    pub fn fleet(&self) -> &[DeviceSpec] {
        &self.fleet
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The deadline a request must meet, if any: its own, else its tenant's
    /// default.
    fn effective_deadline(&self, request: &ServeRequest) -> Option<f64> {
        request
            .deadline_ms
            .or_else(|| self.tenant_slos.get(&request.tenant).copied())
    }

    /// The device indices a fleet-capped tenant may run on: `shards`
    /// consecutive fleet slots starting at a stable hash of the tenant name.
    /// `None` for tenants without a fleet cap (any device).
    fn shard_set(&self, tenant: &str, fleet_len: usize) -> Option<Vec<usize>> {
        self.fleet_tenant_caps.get(tenant).map(|cap| {
            let k = cap.shards.clamp(1, fleet_len);
            let start = (Fnv1a::new().write_str(tenant).finish() % fleet_len as u64) as usize;
            (0..k).map(|i| (start + i) % fleet_len).collect()
        })
    }

    /// The per-device resident-byte cap admission charges `tenant` against:
    /// the tighter of the per-device cap and the fleet cap's per-shard
    /// slice.
    fn effective_tenant_cap(&self, tenant: &str) -> Option<u64> {
        let per_device = self.tenant_caps.get(tenant).copied();
        let fleet_len = self.fleet.len().max(1);
        let per_shard = self.fleet_tenant_caps.get(tenant).map(|cap| {
            let k = cap.shards.clamp(1, fleet_len) as u64;
            cap.bytes / k
        });
        match (per_device, per_shard) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The outcome row of a request overload control shed: zero latency and
    /// queue wait (it never occupied the device), no error — the typed
    /// [`RejectCause`] is the whole story, and the metrics layer excludes
    /// rejected requests from SLO accounting.
    #[allow(clippy::too_many_arguments)]
    fn rejected_outcome(
        &self,
        seq: usize,
        request: &ServeRequest,
        device: &DeviceSpec,
        device_index: usize,
        cause: RejectCause,
        admission_laxity_ms: Option<f64>,
        stolen_from: Option<usize>,
    ) -> RequestOutcome {
        RequestOutcome {
            seq,
            model: request.model.abbr.clone(),
            tenant: request.tenant.clone(),
            priority: request.priority,
            device: device.name.clone(),
            device_index,
            arrival_ms: request.arrival_ms,
            start_ms: request.arrival_ms,
            completion_ms: request.arrival_ms,
            queue_wait_ms: 0.0,
            latency_ms: 0.0,
            deadline_ms: self.effective_deadline(request),
            admission_laxity_ms,
            resident_estimate_bytes: 0,
            preemptions: 0,
            suspended_ms: 0.0,
            resume_penalty_ms: 0.0,
            cache_hit: false,
            peak_memory_mb: 0.0,
            phases: PhaseBreakdown::attribute(0.0, 0.0, 0.0, 0.0, &[], &[]),
            rejected: Some(cause),
            stolen_from,
            failure: None,
            retries: 0,
            failed_over: false,
            error: None,
            report: None,
            decode: None,
        }
    }

    /// Observe every arrival up to `now` (pending is sorted by arrival, so
    /// this walks a prefix), shedding past the queue bound and tracking the
    /// queue-depth high-water mark. Runs at each scheduling boundary of the
    /// device loop; depth can only shrink at those same boundaries
    /// (admissions), so processing the arrivals of a busy interval in
    /// arrival order here reproduces the depth evolution exactly. A shed
    /// request is rejected *at its own arrival instant* with
    /// [`RejectCause::QueueFull`].
    #[allow(clippy::too_many_arguments)]
    fn observe_arrivals(
        &self,
        now: f64,
        device: &DeviceSpec,
        device_index: usize,
        stolen: &HashMap<usize, usize>,
        pending: &mut Vec<(usize, &ServeRequest)>,
        enqueued: &mut HashSet<usize>,
        queued: &mut usize,
        high_water: &mut usize,
        outcomes: &mut Vec<RequestOutcome>,
        trace: &mut TraceRecorder,
    ) {
        let bound = self.overload.queue_bound;
        let mut i = 0;
        while i < pending.len() {
            let (seq, request) = pending[i];
            if request.arrival_ms > now {
                break;
            }
            if enqueued.contains(&seq) {
                i += 1;
                continue;
            }
            if let Some(bound) = bound {
                if *queued >= bound {
                    pending.remove(i);
                    outcomes.push(self.rejected_outcome(
                        seq,
                        request,
                        device,
                        device_index,
                        RejectCause::QueueFull,
                        None,
                        stolen.get(&seq).copied(),
                    ));
                    if trace.enabled() {
                        trace.instant(
                            TraceKind::Reject,
                            TraceLane::Request(seq),
                            &format!("reject {} (queue-full)", request.model.abbr),
                            request.arrival_ms,
                        );
                    }
                    continue;
                }
            }
            enqueued.insert(seq);
            *queued += 1;
            *high_water = (*high_water).max(*queued);
            i += 1;
        }
    }

    /// Serve `requests` (any order; arrival times need not be sorted) and
    /// report per-request outcomes, per-device utilization, latency
    /// percentiles (overall and per priority), SLO attainment and preemption
    /// counts.
    ///
    /// Independent device timelines advance **concurrently** on the
    /// process-wide [`pool::global`] thread pool (see the
    /// [module docs](self) for the placement → parallel stepping → ordered
    /// merge structure); the report is byte-identical to a serial run.
    ///
    /// Per-request failures (out-of-memory, tenant caps) are recorded in the
    /// outcomes, not propagated.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty fleet, for malformed command streams
    /// (an internal invariant violation, not a modelled outcome), and for a
    /// panic inside a device worker ([`SimError::WorkerPanic`]).
    pub fn run(&self, requests: &[ServeRequest]) -> SimResult<ServeReport> {
        self.run_on(pool::global(), requests)
    }

    /// [`run`](Self::run) on an explicit pool. `ThreadPool::with_threads(1)`
    /// steps the fleet inline on the caller thread in fleet order — the
    /// exact serial loop, kept as the byte-identity oracle and the
    /// `--threads 1` bisection path.
    pub fn run_on(&self, pool: &ThreadPool, requests: &[ServeRequest]) -> SimResult<ServeReport> {
        let fleet_len = self.fleet.len();
        if fleet_len == 0 {
            return Err(SimError::InvalidParameter {
                message: "cannot serve on an empty fleet: ServeEngine needs at least one device"
                    .to_string(),
            });
        }

        // ---- placement: the sequential prologue ----
        let mut placement: Vec<usize> = Vec::with_capacity(requests.len());
        for (seq, request) in requests.iter().enumerate() {
            let placed = self
                .policy
                .place(request, seq, fleet_len)
                .min(fleet_len - 1);
            // A fleet-capped tenant is confined to its shard set, so the
            // per-shard sub-caps bound its fleet-wide footprint by
            // construction (see `with_fleet_tenant_cap`).
            let device = match self.shard_set(&request.tenant, fleet_len) {
                Some(allowed) => allowed[placed % allowed.len()],
                None => placed,
            };
            placement.push(device);
        }
        let engines: Vec<FlashMem> = self
            .fleet
            .iter()
            .map(|device| FlashMem::new(device.clone()).with_config(self.config.clone()))
            .collect();
        // Warmth is snapshotted *before* the overload prologue compiles
        // anything, so `cache_hit` keeps meaning "warm when the run began"
        // even when admission control / steal planning populate the cache.
        let warm_snapshot: Option<Vec<HashSet<u64>>> = if self.overload.uses_estimates() {
            Some(
                engines
                    .iter()
                    .zip(&self.fleet)
                    .map(|(engine, device)| {
                        requests
                            .iter()
                            .map(|request| ArtifactCache::key_for(engine, &request.model, device))
                            .filter(|&key| self.cache.is_warm(key))
                            .collect()
                    })
                    .collect(),
            )
        } else {
            None
        };

        // ---- overload pipeline (sequential): admission control + steal ----
        // Both stages run on the caller thread in submission order — the
        // same commit-point discipline as placement, which is what keeps
        // every shed/steal decision byte-identical at any pool width.
        // Service-time predictions are memoized per (model, device) and
        // compile through the shared cache, sequentially, so the cache
        // hit/miss counters stay schedule-independent too.
        let mut rejected: HashSet<usize> = HashSet::new();
        let mut prerejected: Vec<Vec<(usize, &ServeRequest, f64)>> = vec![Vec::new(); fleet_len];
        let mut stolen_from: HashMap<usize, usize> = HashMap::new();
        if self.overload.uses_estimates() {
            let mut memo: HashMap<(String, usize), f64> = HashMap::new();
            let mut predict = |model: &ModelSpec, d: usize| -> f64 {
                *memo.entry((model.abbr.clone(), d)).or_insert_with(|| {
                    match self.cache.compile(&engines[d], model, &self.fleet[d]) {
                        Ok((artifact, _)) => {
                            predicted_service_ms(&artifact, model, &self.fleet[d], &self.config)
                        }
                        // Compilation failures surface at admission.
                        Err(_) => 0.0,
                    }
                })
            };

            if self.overload.admission_control {
                for (seq, request) in requests.iter().enumerate() {
                    let Some(budget) = self.effective_deadline(request) else {
                        continue;
                    };
                    let allowed = self
                        .shard_set(&request.tenant, fleet_len)
                        .unwrap_or_else(|| (0..fleet_len).collect());
                    let best = allowed
                        .iter()
                        .map(|&d| predict(&request.model, d))
                        .fold(f64::INFINITY, f64::min);
                    // Provably unmeetable: the *uncontended* service time on
                    // the best device this request may run on already
                    // exceeds its latency budget, so its laxity is negative
                    // on every shard before any queueing.
                    if best.is_finite() && best > budget + 1e-9 {
                        rejected.insert(seq);
                        prerejected[placement[seq]].push((seq, request, budget - best));
                    }
                }
            }

            if self.overload.steal {
                // Discrete-event plan over the accepted requests in arrival
                // order: each device is `max_in_flight` slots that free up
                // after the predicted service time. A request that would
                // queue at its home shard is re-placed onto the device that
                // starts it strictly earliest (ties to the lowest fleet
                // index); in-flight work is never moved — by the time a
                // later arrival is planned, everything planned before it is
                // already committed.
                let slots = self.policy.max_in_flight().max(1);
                let mut free: Vec<Vec<f64>> = vec![vec![0.0_f64; slots]; fleet_len];
                let start_at = |free: &[Vec<f64>], d: usize, arrival: f64| -> f64 {
                    arrival.max(free[d].iter().copied().fold(f64::INFINITY, f64::min))
                };
                let mut order: Vec<usize> = (0..requests.len())
                    .filter(|seq| !rejected.contains(seq))
                    .collect();
                order.sort_by(|&a, &b| {
                    requests[a]
                        .arrival_ms
                        .partial_cmp(&requests[b].arrival_ms)
                        .expect("arrival times are finite")
                        .then(a.cmp(&b))
                });
                for seq in order {
                    let request = &requests[seq];
                    let home = placement[seq];
                    let mut dest = home;
                    if start_at(&free, home, request.arrival_ms) > request.arrival_ms + 1e-9 {
                        // The request would queue at home — it is stealable.
                        let allowed = self
                            .shard_set(&request.tenant, fleet_len)
                            .unwrap_or_else(|| (0..fleet_len).collect());
                        for d in allowed {
                            if start_at(&free, d, request.arrival_ms) + 1e-9
                                < start_at(&free, dest, request.arrival_ms)
                            {
                                dest = d;
                            }
                        }
                    }
                    if dest != home {
                        stolen_from.insert(seq, home);
                        placement[seq] = dest;
                    }
                    let start = start_at(&free, dest, request.arrival_ms);
                    let service = predict(&request.model, dest);
                    let mut slot = 0;
                    for (i, &value) in free[dest].iter().enumerate() {
                        if value < free[dest][slot] {
                            slot = i;
                        }
                    }
                    free[dest][slot] = start + service;
                }
            }
        }

        let mut per_device: Vec<Vec<(usize, &ServeRequest)>> = vec![Vec::new(); fleet_len];
        for (seq, request) in requests.iter().enumerate() {
            if !rejected.contains(&seq) {
                per_device[placement[seq]].push((seq, request));
            }
        }

        // A non-empty fault plan or any recovery knob routes through the
        // chaos pipeline (rounds of fan-out with sequential recovery
        // planning in between). Fault-free, recovery-off runs never reach
        // it, keeping the fast path byte-identical to a build without the
        // chaos layer.
        if !self.fault_plan.is_empty() || self.recovery.any_enabled() {
            drop(engines);
            return self.run_chaos(pool, requests, per_device, prerejected, &stolen_from);
        }

        let jobs: Vec<DeviceJob<'_>> = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| {
                let device = &self.fleet[index];
                let assigned = std::mem::take(&mut per_device[index]);
                let stolen: HashMap<usize, usize> = assigned
                    .iter()
                    .filter_map(|(seq, _)| stolen_from.get(seq).map(|&home| (*seq, home)))
                    .collect();
                let warm = match &warm_snapshot {
                    Some(sets) => sets[index].clone(),
                    None => assigned
                        .iter()
                        .map(|(_, request)| ArtifactCache::key_for(&engine, &request.model, device))
                        .filter(|&key| self.cache.is_warm(key))
                        .collect(),
                };
                DeviceJob {
                    index,
                    device,
                    engine,
                    sim: GpuSimulator::new(device.clone(), SimConfig::default()),
                    assigned,
                    prerejected: std::mem::take(&mut prerejected[index]),
                    stolen,
                    warm,
                }
            })
            .collect();

        // ---- parallel device stepping ----
        let device_results = pool.try_parallel_map(jobs, |job| {
            catch_unwind(AssertUnwindSafe(|| self.run_device(job, None))).unwrap_or_else(
                |payload| {
                    Err(SimError::WorkerPanic {
                        message: panic_message(payload),
                    })
                },
            )
        })?;

        // ---- ordered merge: the commit point ----
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut devices = Vec::with_capacity(fleet_len);
        let mut recorders = Vec::with_capacity(fleet_len);
        for run in device_results {
            let mut run = run;
            outcomes.append(&mut run.outcomes);
            devices.push(run.report);
            recorders.push(run.trace);
        }
        outcomes.sort_by_key(|o| o.seq);
        Ok(self.assemble_report(outcomes, devices, recorders, RecoveryTallies::default()))
    }

    /// Assemble the final [`ServeReport`] from merged outcomes, per-device
    /// reports and trace recorders (in fleet order) — shared by the fast
    /// path and the chaos pipeline.
    fn assemble_report(
        &self,
        outcomes: Vec<RequestOutcome>,
        devices: Vec<DeviceReport>,
        recorders: Vec<TraceRecorder>,
        recovery: RecoveryTallies,
    ) -> ServeReport {
        // Trace buffers merge in fleet order — the same deterministic commit
        // discipline as the outcome sort, so the trace is byte-identical at
        // every pool width.
        let trace = if self.trace.enabled {
            Some(FleetTrace {
                processes: self
                    .fleet
                    .iter()
                    .zip(recorders)
                    .enumerate()
                    .map(|(index, (device, recorder))| {
                        recorder.into_process_trace(&format!("{} #{index}", device.name))
                    })
                    .collect(),
            })
        } else {
            None
        };

        let latencies: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.succeeded())
            .map(|o| o.latency_ms)
            .collect();
        let latency = LatencySummary::from_latencies(&latencies);
        let per_priority = PriorityLatency::from_outcomes(&outcomes);
        let slo = SloSummary::from_outcomes(&outcomes);
        let preemptions = outcomes.iter().map(|o| o.preemptions).sum();
        let makespan = devices
            .iter()
            .map(|d| d.makespan_ms)
            .fold(0.0_f64, f64::max);
        let throughput_rps = if makespan > 0.0 {
            latencies.len() as f64 * 1000.0 / makespan
        } else {
            0.0
        };
        let tokens = TokenMetrics::from_outcomes(&outcomes, makespan);
        ServeReport {
            policy: self.policy.name().to_string(),
            outcomes,
            devices,
            latency,
            per_priority,
            slo,
            preemptions,
            throughput_rps,
            ttft: tokens.ttft,
            itl: tokens.itl,
            decode_tokens: tokens.decode_tokens,
            tokens_per_s: tokens.tokens_per_s,
            recovery,
            cache: self.cache.stats(),
            trace,
        }
    }

    /// The chaos pipeline: rounds of the ordinary parallel fan-out with a
    /// **sequential recovery planner** between rounds.
    ///
    /// Each round steps the devices that have work (in parallel, exactly
    /// like the fast path); injected faults knock requests out of their
    /// round as [`ServeOrphan`]s instead of final outcomes. At the round's
    /// ordered merge the planner — on the caller thread, in submission
    /// order — decides each orphan's fate: same-device **retry** while the
    /// retry budget lasts, **failover** onto the least-loaded surviving
    /// device (resuming a carried [`Suspension`] when a same-spec sibling
    /// exists, restarting from scratch otherwise), or a final typed
    /// failure. It also drives the circuit breaker: devices crossing the
    /// fault threshold are **quarantined** (no placements), and after the
    /// probe delay a single **probe** request tests the water — a clean
    /// probe reinstates the device, a faulting one re-quarantines it.
    ///
    /// Rounds are barriers and every decision is planned sequentially, so
    /// the report is byte-identical at any pool width. Termination is
    /// structural: retries are bounded per request by the budget, failovers
    /// by the fleet size, and probes only move work that already exists.
    #[allow(clippy::too_many_lines)]
    fn run_chaos(
        &self,
        pool: &ThreadPool,
        requests: &[ServeRequest],
        per_device: Vec<Vec<(usize, &ServeRequest)>>,
        mut prerejected: Vec<Vec<(usize, &ServeRequest, f64)>>,
        stolen_from: &HashMap<usize, usize>,
    ) -> SimResult<ServeReport> {
        let fleet_len = self.fleet.len();
        let mut masters: Vec<TraceRecorder> = (0..fleet_len)
            .map(|_| TraceRecorder::new(self.trace))
            .collect();
        let mut devices: Vec<Option<DeviceReport>> = (0..fleet_len).map(|_| None).collect();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut tallies = RecoveryTallies::default();
        let mut cum_makespan = vec![0.0_f64; fleet_len];
        let mut health = vec![Health::Healthy; fleet_len];
        let mut fault_counts = vec![0_u32; fleet_len];

        // Round-0 work is the prologue's placement, as owned request clones
        // (later rounds re-clone with arrivals bumped to the backoff floor).
        let mut work: Vec<Vec<(usize, ServeRequest, ServeCarry)>> = per_device
            .into_iter()
            .map(|assigned| {
                assigned
                    .into_iter()
                    .map(|(seq, request)| {
                        let carry = ServeCarry::fresh(request, stolen_from.get(&seq).copied());
                        (seq, request.clone(), carry)
                    })
                    .collect()
            })
            .collect();
        let mut seeds: Vec<Vec<SeededSuspension>> = (0..fleet_len).map(|_| Vec::new()).collect();
        let mut first_round = true;

        while first_round
            || work.iter().any(|w| !w.is_empty())
            || seeds.iter().any(|s| !s.is_empty())
        {
            let included: Vec<usize> = if first_round {
                (0..fleet_len).collect()
            } else {
                (0..fleet_len)
                    .filter(|&d| !work[d].is_empty() || !seeds[d].is_empty())
                    .collect()
            };
            let round_work =
                std::mem::replace(&mut work, (0..fleet_len).map(|_| Vec::new()).collect());
            let mut round_seeds =
                std::mem::replace(&mut seeds, (0..fleet_len).map(|_| Vec::new()).collect());

            let jobs: Vec<(DeviceJob<'_>, ServeChaosJob)> = included
                .iter()
                .map(|&index| {
                    let device = &self.fleet[index];
                    let engine = FlashMem::new(device.clone()).with_config(self.config.clone());
                    let assigned: Vec<(usize, &ServeRequest)> = round_work[index]
                        .iter()
                        .map(|(seq, request, _)| (*seq, request))
                        .collect();
                    // Warmth is snapshotted sequentially here, per round, so
                    // `cache_hit` stays schedule-independent (re-dispatched
                    // models were compiled in an earlier round and report a
                    // hit on every width).
                    let warm: HashSet<u64> = assigned
                        .iter()
                        .map(|(_, request)| ArtifactCache::key_for(&engine, &request.model, device))
                        .filter(|&key| self.cache.is_warm(key))
                        .collect();
                    let stolen: HashMap<usize, usize> = assigned
                        .iter()
                        .filter_map(|(seq, _)| stolen_from.get(seq).map(|&home| (*seq, home)))
                        .collect();
                    let carry: HashMap<usize, ServeCarry> = round_work[index]
                        .iter()
                        .map(|(seq, _, carry)| (*seq, *carry))
                        .collect();
                    (
                        DeviceJob {
                            index,
                            device,
                            engine,
                            sim: GpuSimulator::new(device.clone(), SimConfig::default()),
                            assigned,
                            prerejected: std::mem::take(&mut prerejected[index]),
                            stolen,
                            warm,
                        },
                        ServeChaosJob {
                            carry,
                            seeds: std::mem::take(&mut round_seeds[index]),
                        },
                    )
                })
                .collect();

            let device_results = pool.try_parallel_map(jobs, |(job, chaos)| {
                catch_unwind(AssertUnwindSafe(|| self.run_device(job, Some(chaos)))).unwrap_or_else(
                    |payload| {
                        Err(SimError::WorkerPanic {
                            message: panic_message(payload),
                        })
                    },
                )
            })?;

            // ---- ordered merge ----
            let mut orphans: Vec<ServeOrphan> = Vec::new();
            let mut round_faults = vec![0_u32; fleet_len];
            for (&index, run) in included.iter().zip(device_results) {
                let DeviceRun {
                    outcomes: mut device_outcomes,
                    report,
                    trace,
                    orphans: mut device_orphans,
                    lost,
                    faults,
                } = run;
                outcomes.append(&mut device_outcomes);
                cum_makespan[index] = cum_makespan[index].max(report.makespan_ms);
                match &mut devices[index] {
                    Some(existing) => existing.absorb_round(report),
                    slot => *slot = Some(report),
                }
                masters[index].absorb(trace);
                round_faults[index] = faults;
                fault_counts[index] += faults;
                if lost && health[index] != Health::Lost {
                    // A lost device is permanently quarantined — but the
                    // tally records recovery *decisions*, so an unprotected
                    // run (fault plan only, recovery off) reports all zeros.
                    health[index] = Health::Lost;
                    if self.recovery.any_enabled() {
                        tallies.quarantines += 1;
                    }
                }
                orphans.append(&mut device_orphans);
            }

            // ---- sequential recovery planning ----
            // Probe verdicts first: a clean probe closes the breaker, a
            // faulting one re-opens it.
            for &index in &included {
                if let Health::Quarantined { probing: true, .. } = health[index] {
                    if round_faults[index] == 0 {
                        health[index] = Health::Healthy;
                        fault_counts[index] = 0;
                    } else {
                        health[index] = Health::Quarantined {
                            since_ms: cum_makespan[index],
                            probing: false,
                        };
                        tallies.quarantines += 1;
                        if masters[index].enabled() {
                            masters[index].instant(
                                TraceKind::Quarantine,
                                TraceLane::Host,
                                &format!("quarantine {} (probe failed)", self.fleet[index].name),
                                cum_makespan[index],
                            );
                        }
                    }
                }
            }
            // Trip the breaker on devices crossing the fault threshold.
            if let Some(threshold) = self.recovery.quarantine_threshold {
                for &index in &included {
                    if health[index] == Health::Healthy && fault_counts[index] >= threshold {
                        health[index] = Health::Quarantined {
                            since_ms: cum_makespan[index],
                            probing: false,
                        };
                        tallies.quarantines += 1;
                        if masters[index].enabled() {
                            masters[index].instant(
                                TraceKind::Quarantine,
                                TraceLane::Host,
                                &format!(
                                    "quarantine {} after {} faults",
                                    self.fleet[index].name, fault_counts[index]
                                ),
                                cum_makespan[index],
                            );
                        }
                    }
                }
            }

            // Plan every orphan's fate, in submission order.
            orphans.sort_by_key(|o| o.outcome.seq);
            for orphan in orphans {
                let seq = orphan.outcome.seq;
                let from = orphan.outcome.device_index;
                let failed_at = orphan.outcome.completion_ms;
                let can_retry = orphan.kind != FaultKind::DeviceLoss
                    && orphan.retries < self.recovery.retry_budget;
                let next_attempts = orphan.retries + orphan.hops + 1;
                let backoff = self.recovery.backoff_ms * f64::from(next_attempts);
                let allowed: Vec<usize> = self
                    .shard_set(&requests[seq].tenant, fleet_len)
                    .unwrap_or_else(|| (0..fleet_len).collect());
                // A destination is usable if it is healthy, inside the
                // tenant's shard set, and will not itself be lost before the
                // re-dispatch could start.
                let available = |d: usize| -> bool {
                    health[d] == Health::Healthy
                        && allowed.contains(&d)
                        && self
                            .fault_plan
                            .device_loss_ms(d)
                            .is_none_or(|t| (failed_at + backoff).max(cum_makespan[d]) < t)
                };
                let healthiest = (0..fleet_len)
                    .filter(|&d| d != from && available(d))
                    .min_by(|&a, &b| {
                        cum_makespan[a]
                            .partial_cmp(&cum_makespan[b])
                            .expect("makespans are finite")
                            .then(a.cmp(&b))
                    });
                let (dest, retries, hops) = if can_retry {
                    // Same-device retry; a dead or quarantined home falls
                    // back to the least-loaded survivor.
                    let dest = if available(from) {
                        Some(from)
                    } else {
                        healthiest
                    };
                    (dest, orphan.retries + 1, orphan.hops)
                } else if self.recovery.failover && orphan.hops < fleet_len as u32 {
                    (healthiest, orphan.retries, orphan.hops + 1)
                } else {
                    (None, orphan.retries, orphan.hops)
                };
                let Some(dest) = dest else {
                    // Budget exhausted or nowhere left to run: this attempt's
                    // typed failure is the final outcome.
                    outcomes.push(orphan.outcome);
                    continue;
                };
                let ready = (failed_at + backoff).max(cum_makespan[dest]);
                let failed_over = orphan.outcome.failed_over || dest != from;
                if masters[dest].enabled() {
                    let (kind, verb) = if can_retry {
                        (TraceKind::Retry, "retry")
                    } else {
                        (TraceKind::Failover, "failover")
                    };
                    masters[dest].instant(
                        kind,
                        TraceLane::Request(seq),
                        &format!(
                            "{verb} {} attempt {} from device #{from}",
                            orphan.outcome.model,
                            retries + hops + 1
                        ),
                        ready,
                    );
                }
                if can_retry {
                    tallies.retries += 1;
                } else {
                    tallies.failovers += 1;
                }
                match orphan.resume {
                    // In-flight state resumes only on a same-spec sibling —
                    // the suspension snapshot is meaningful against the same
                    // cost model. Anywhere else restarts from scratch.
                    Some((mut meta, suspension))
                        if self.fleet[dest].name == self.fleet[from].name =>
                    {
                        meta.retries = retries;
                        meta.failed_over = failed_over;
                        seeds[dest].push(SeededSuspension {
                            meta,
                            suspension,
                            suspended_at_ms: failed_at,
                            ready_ms: ready,
                        });
                    }
                    _ => {
                        let mut request = requests[seq].clone();
                        request.arrival_ms = ready;
                        let carry = ServeCarry {
                            original_arrival_ms: orphan.outcome.arrival_ms,
                            retries,
                            hops,
                            failed_over,
                            stolen_from: orphan.outcome.stolen_from,
                        };
                        work[dest].push((seq, request, carry));
                    }
                }
            }

            // Probe dispatch: a quarantined (not lost) device past its probe
            // delay gets exactly one queued restart item re-routed to it.
            let horizon = cum_makespan.iter().copied().fold(0.0_f64, f64::max);
            for probe_dev in 0..fleet_len {
                let Health::Quarantined {
                    since_ms,
                    probing: false,
                } = health[probe_dev]
                else {
                    continue;
                };
                if horizon - since_ms < self.recovery.probe_after_ms {
                    continue;
                }
                let candidate = (0..fleet_len)
                    .filter(|&d| d != probe_dev)
                    .flat_map(|d| work[d].iter().map(move |(seq, ..)| (*seq, d)))
                    .filter(|&(seq, _)| {
                        self.shard_set(&requests[seq].tenant, fleet_len)
                            .is_none_or(|allowed| allowed.contains(&probe_dev))
                    })
                    .min();
                let Some((seq, d)) = candidate else { continue };
                let pos = work[d]
                    .iter()
                    .position(|(s, ..)| *s == seq)
                    .expect("candidate was just found in this queue");
                let (seq, mut request, carry) = work[d].remove(pos);
                request.arrival_ms = request.arrival_ms.max(cum_makespan[probe_dev]);
                tallies.probes += 1;
                health[probe_dev] = Health::Quarantined {
                    since_ms,
                    probing: true,
                };
                if masters[probe_dev].enabled() {
                    masters[probe_dev].instant(
                        TraceKind::Probe,
                        TraceLane::Request(seq),
                        &format!(
                            "probe {} with {}",
                            self.fleet[probe_dev].name, request.model.abbr
                        ),
                        request.arrival_ms,
                    );
                }
                work[probe_dev].push((seq, request, carry));
            }

            first_round = false;
        }

        outcomes.sort_by_key(|o| o.seq);
        let devices: Vec<DeviceReport> = devices
            .into_iter()
            .enumerate()
            .map(|(index, report)| {
                report.unwrap_or_else(|| DeviceReport::empty(&self.fleet[index].name))
            })
            .collect();
        let report = self.assemble_report(outcomes, devices, masters, tallies);
        report.assert_disposition();
        Ok(report)
    }

    /// Run one device's timeline to completion. Called once per
    /// [`DeviceJob`], usually from a pool worker: everything it touches is
    /// either owned by the job, local to this call, or a thread-safe shared
    /// structure (the plan cache). The returned [`TraceRecorder`] is this
    /// device's private event buffer, filled single-threaded here and merged
    /// (deterministically, in fleet order) at the run's commit point.
    ///
    /// `chaos` is `Some` only on the chaos pipeline: it carries per-request
    /// recovery state and failed-over suspensions, and switches on fault
    /// injection from the engine's [`FaultPlan`]. With `None` every chaos
    /// branch is skipped and the float arithmetic is exactly the fault-free
    /// engine's.
    #[allow(clippy::too_many_lines)]
    fn run_device(&self, job: DeviceJob<'_>, chaos: Option<ServeChaosJob>) -> SimResult<DeviceRun> {
        let DeviceJob {
            index: device_index,
            device,
            engine,
            sim,
            assigned,
            prerejected,
            stolen,
            warm,
        } = job;
        let chaos_active = chaos.is_some();
        let (carry_map, seed_list) = match chaos {
            Some(c) => (c.carry, c.seeds),
            None => (HashMap::new(), Vec::new()),
        };
        let lost_at_ms = if chaos_active {
            self.fault_plan.device_loss_ms(device_index)
        } else {
            None
        };
        let mut orphans: Vec<ServeOrphan> = Vec::new();
        let mut lost = false;
        let mut faults = 0_u32;
        let mut trace = TraceRecorder::new(self.trace);
        let mut tracker = MemoryTracker::for_device(device);
        let slots = self.policy.max_in_flight().max(1);
        let exclusive = slots == 1 && self.policy.preemption().is_none();

        let total_assigned = assigned.len() + prerejected.len() + seed_list.len();
        let mut pending = assigned;
        pending.sort_by(|a, b| {
            a.1.arrival_ms
                .partial_cmp(&b.1.arrival_ms)
                .expect("arrival times are finite")
                .then(a.0.cmp(&b.0))
        });

        // Static per-request scheduling inputs. Absolute deadlines are cheap
        // and always resolved; service-time predictions cost one uncontended
        // stream replay per distinct model, so they are only computed when
        // the policy asks ([`SchedulePolicy::uses_estimates`]) and are
        // memoized by model abbreviation (plan, device and config are fixed
        // within one device run). Prediction compiles through the shared
        // plan cache on purpose: the artifact is needed again at admission,
        // and solving LC-OPG twice to keep the hit counters pristine would
        // double the expensive part. Under estimate-using policies the
        // admission-time compile of each model is therefore always a cache
        // hit (the precompute paid the miss).
        let uses_estimates = self.policy.uses_estimates();
        let mut service_memo: HashMap<String, f64> = HashMap::new();
        let mut deadlines: HashMap<usize, Option<f64>> = HashMap::new();
        let mut estimates: HashMap<usize, f64> = HashMap::new();
        for (seq, request) in &pending {
            // Re-dispatched requests arrive at the recovery planner's ready
            // floor, but their deadline clock started at true submission.
            let deadline = match carry_map.get(seq) {
                Some(carry) => request
                    .deadline_ms
                    .or_else(|| self.tenant_slos.get(&request.tenant).copied())
                    .map(|d| carry.original_arrival_ms + d),
                None => request.absolute_deadline_ms().or_else(|| {
                    self.tenant_slos
                        .get(&request.tenant)
                        .map(|d| request.arrival_ms + d)
                }),
            };
            deadlines.insert(*seq, deadline);
            let estimate = if uses_estimates {
                *service_memo
                    .entry(request.model.abbr.clone())
                    .or_insert_with(|| {
                        match self.cache.compile(&engine, &request.model, device) {
                            Ok((artifact, _)) => predicted_service_ms(
                                &artifact,
                                &request.model,
                                device,
                                &self.config,
                            ),
                            // Compilation failures surface at admission.
                            Err(_) => 0.0,
                        }
                    })
            } else {
                0.0
            };
            estimates.insert(*seq, estimate);
        }

        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut suspended: Vec<Suspended> = Vec::new();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut epoch = 0.0_f64;
        let mut clocks = QueueClocks::new();
        let mut stitched = MemoryTrace::new();
        let mut transfer_busy = 0.0_f64;
        let mut compute_busy = 0.0_f64;
        let mut makespan = 0.0_f64;
        let mut tenant_bytes: HashMap<String, u64> = HashMap::new();
        let mut admit_order = 0_usize;
        // Resident-byte estimates computed by the preemption phase's
        // feasibility checks, memoized per request seq.
        let mut estimate_memo: HashMap<usize, u64> = HashMap::new();
        // Bounded-queue bookkeeping: which pending requests the loop has
        // observed arriving (and not shed), the live queue depth (arrived
        // but not yet admitted), and its high-water mark.
        let mut enqueued: HashSet<usize> = HashSet::new();
        let mut queued = 0_usize;
        let mut queue_high_water = 0_usize;

        // Failed-over suspensions seed the suspended list: the ordinary
        // resume path re-acquires their residency (charging the reload
        // penalty) once their backoff floor passes. Their tenant reservation
        // is held while suspended, exactly like a preemption's.
        for seed in seed_list {
            let SeededSuspension {
                mut meta,
                suspension,
                suspended_at_ms,
                ready_ms,
            } = seed;
            *tenant_bytes.entry(meta.tenant.clone()).or_insert(0) += meta.estimate_bytes;
            meta.trace_start = tracker.trace().len();
            meta.order = admit_order;
            admit_order += 1;
            suspended.push(Suspended {
                meta,
                suspended_at_ms,
                suspension,
                ready_ms,
            });
        }

        // Admission-control rejects were decided in the run prologue; their
        // outcomes and trace instants are emitted here so each lands on its
        // placed device's private buffers and flows through the ordered
        // merge like everything else.
        for (seq, request, laxity) in &prerejected {
            outcomes.push(self.rejected_outcome(
                *seq,
                request,
                device,
                device_index,
                RejectCause::DeadlineUnmeetable,
                Some(*laxity),
                None,
            ));
            if trace.enabled() {
                trace.instant(
                    TraceKind::Reject,
                    TraceLane::Request(*seq),
                    &format!("reject {} (deadline-unmeetable)", request.model.abbr),
                    request.arrival_ms,
                );
            }
        }
        if trace.enabled() {
            for (seq, request) in &pending {
                if let Some(home) = stolen.get(seq) {
                    trace.instant(
                        TraceKind::Steal,
                        TraceLane::Request(*seq),
                        &format!("steal {} from device #{home}", request.model.abbr),
                        request.arrival_ms,
                    );
                }
            }
        }

        // Build the wait-only outcome of a request that failed before it
        // ever executed (compile error, hopeless tenant cap, device loss
        // while still queued).
        let waiting_failure = |seq: usize,
                               request: &ServeRequest,
                               deadline_ms: Option<f64>,
                               now: f64,
                               error: SimError|
         -> RequestOutcome {
            let carry = carry_map.get(&seq);
            let arrival_ms = carry.map_or(request.arrival_ms, |c| c.original_arrival_ms);
            let wait_ms = (now - arrival_ms).max(0.0);
            RequestOutcome {
                seq,
                model: request.model.abbr.clone(),
                tenant: request.tenant.clone(),
                priority: request.priority,
                device: device.name.clone(),
                device_index,
                arrival_ms,
                start_ms: now,
                completion_ms: now,
                queue_wait_ms: wait_ms,
                latency_ms: wait_ms,
                deadline_ms,
                admission_laxity_ms: None,
                resident_estimate_bytes: 0,
                preemptions: 0,
                suspended_ms: 0.0,
                resume_penalty_ms: 0.0,
                cache_hit: false,
                peak_memory_mb: 0.0,
                phases: PhaseBreakdown::attribute(wait_ms, wait_ms, 0.0, 0.0, &[], &[]),
                rejected: None,
                stolen_from: carry
                    .and_then(|c| c.stolen_from)
                    .or_else(|| stolen.get(&seq).copied()),
                failure: Some(FailureCause::from_error(&error)),
                retries: carry.map_or(0, |c| c.retries),
                failed_over: carry.is_some_and(|c| c.failed_over),
                error: Some(error),
                report: None,
                decode: None,
            }
        };
        let fail = |outcomes: &mut Vec<RequestOutcome>,
                    trace: &mut TraceRecorder,
                    seq: usize,
                    request: &ServeRequest,
                    deadline_ms: Option<f64>,
                    now: f64,
                    error: SimError| {
            outcomes.push(waiting_failure(seq, request, deadline_ms, now, error));
            trace_failure(trace, outcomes.last().expect("just pushed"), None);
        };

        let bounded = self.overload.queue_bound.is_some();
        loop {
            // ---------------- preemption ----------------
            if self.policy.preemption().is_some() {
                if bounded && !in_flight.is_empty() {
                    // Observe (and shed past the bound) every arrival the
                    // preemption phase is about to see, so a request that is
                    // about to be shed can never trigger a preemption first.
                    let now = epoch
                        + in_flight
                            .iter()
                            .filter_map(|f| f.stepper.peek_start_ms(&clocks))
                            .fold(f64::INFINITY, f64::min);
                    if now.is_finite() {
                        self.observe_arrivals(
                            now,
                            device,
                            device_index,
                            &stolen,
                            &mut pending,
                            &mut enqueued,
                            &mut queued,
                            &mut queue_high_water,
                            &mut outcomes,
                            &mut trace,
                        );
                    }
                }
                self.preempt_outranked(
                    &engine,
                    device,
                    slots,
                    epoch,
                    &clocks,
                    &mut tracker,
                    &pending,
                    &tenant_bytes,
                    &mut estimate_memo,
                    &deadlines,
                    &estimates,
                    bounded.then_some(&enqueued),
                    &mut in_flight,
                    &mut suspended,
                    &mut trace,
                )?;
            }

            // ---------------- admission ----------------
            'admit: while in_flight.len() < slots && !(pending.is_empty() && suspended.is_empty()) {
                if in_flight.is_empty() && suspended.is_empty() {
                    // Idle: re-base the device timeline onto a fresh epoch at
                    // the later of "now" and the earliest pending arrival.
                    // (Never re-based while work is suspended — suspension
                    // snapshots reference the current epoch's local times.)
                    let earliest = pending
                        .iter()
                        .map(|(_, r)| r.arrival_ms)
                        .fold(f64::INFINITY, f64::min);
                    epoch = (epoch + clocks.horizon_ms()).max(earliest);
                    clocks.reset();
                }
                let mut now = if in_flight.is_empty() {
                    if suspended.is_empty() {
                        epoch
                    } else {
                        // Resume as soon as the queues drain.
                        epoch + clocks.horizon_ms()
                    }
                } else {
                    epoch
                        + in_flight
                            .iter()
                            .filter_map(|f| f.stepper.peek_start_ms(&clocks))
                            .fold(f64::INFINITY, f64::min)
                };
                if chaos_active && in_flight.is_empty() {
                    // Re-dispatched work carries a backoff floor its original
                    // arrival does not reflect; with nothing running, jump to
                    // the earliest floor so the loop cannot spin on a queue
                    // whose every candidate is still backing off. Ordinary
                    // suspensions have a `NEG_INFINITY` floor and never move
                    // `now`.
                    let earliest = pending
                        .iter()
                        .map(|(_, r)| r.arrival_ms)
                        .chain(suspended.iter().map(|s| s.ready_ms))
                        .fold(f64::INFINITY, f64::min);
                    if earliest.is_finite() {
                        now = now.max(earliest);
                    }
                }
                self.observe_arrivals(
                    now,
                    device,
                    device_index,
                    &stolen,
                    &mut pending,
                    &mut enqueued,
                    &mut queued,
                    &mut queue_high_water,
                    &mut outcomes,
                    &mut trace,
                );
                let mut candidates =
                    arrived_candidates(&pending, &suspended, now, &deadlines, &estimates, None);
                let ctx = PolicyContext::at(now);
                while !candidates.is_empty() {
                    let choice = self
                        .policy
                        .pick(&candidates, &ctx)
                        .min(candidates.len() - 1);
                    let chosen_seq = candidates[choice].seq;

                    if let Some(pos) = suspended.iter().position(|s| s.meta.seq == chosen_seq) {
                        // -------- resume a preempted request --------
                        if !suspended[pos].suspension.can_resume(&tracker) {
                            if in_flight.is_empty() {
                                // Nothing running will ever free the memory:
                                // the residency is unrecoverable.
                                let s = suspended.remove(pos);
                                let requested = s.suspension.evicted_bytes();
                                makespan = makespan.max(now);
                                decrement(&mut tenant_bytes, &s.meta.tenant, s.meta.estimate_bytes);
                                let mut meta = s.meta;
                                if trace.enabled() {
                                    trace.span(
                                        TraceKind::Suspended,
                                        TraceLane::Request(meta.seq),
                                        &format!("suspended {}", meta.abbr),
                                        s.suspended_at_ms,
                                        now,
                                    );
                                }
                                meta.suspended_ms += (now - s.suspended_at_ms).max(0.0);
                                outcomes.push(meta.into_outcome(
                                    &device.name,
                                    device_index,
                                    now,
                                    0.0,
                                    Some(SimError::OutOfMemory {
                                        pool: "resume residency".to_string(),
                                        requested,
                                        available:
                                            tracker.budget().saturating_sub(tracker.total_in_use()),
                                        capacity: tracker.budget(),
                                    }),
                                    None,
                                ));
                                trace_failure(
                                    &mut trace,
                                    outcomes.last().expect("just pushed"),
                                    None,
                                );
                                continue 'admit;
                            }
                            // Defer until in-flight work frees memory.
                            candidates.remove(choice);
                            continue;
                        }
                        let s = suspended.remove(pos);
                        let cost = self
                            .policy
                            .preemption()
                            .unwrap_or_else(PreemptionCost::free);
                        let resume_local = (now - epoch).max(0.0);
                        if trace.enabled() {
                            trace.span(
                                TraceKind::Suspended,
                                TraceLane::Request(s.meta.seq),
                                &format!("suspended {}", s.meta.abbr),
                                s.suspended_at_ms,
                                now,
                            );
                        }
                        let (stepper, penalty) = s.suspension.resume_into_traced(
                            &sim,
                            &mut tracker,
                            resume_local,
                            epoch,
                            &cost,
                            &mut trace,
                            TraceLane::Request(s.meta.seq),
                            &s.meta.abbr,
                        )?;
                        let mut meta = s.meta;
                        meta.suspended_ms += (now - s.suspended_at_ms).max(0.0);
                        meta.penalty_ms += penalty;
                        meta.run_start_ms = epoch + resume_local + penalty;
                        in_flight.push(InFlight { meta, stepper });
                        continue 'admit;
                    }

                    // -------- admit a fresh request --------
                    let position = pending
                        .iter()
                        .position(|(seq, _)| *seq == chosen_seq)
                        .expect("candidate is pending");
                    let (seq, request) = pending[position];

                    // Report warmth-at-run-start (the prologue snapshot),
                    // not `compile`'s racy mid-run flag: at pool width > 1
                    // that flag records which device won the compile race.
                    let cache_hit =
                        warm.contains(&ArtifactCache::key_for(&engine, &request.model, device));
                    let artifact = match self.cache.compile_traced(
                        &engine,
                        &request.model,
                        device,
                        now,
                        cache_hit,
                        TraceLane::Host,
                        &mut trace,
                    ) {
                        Ok((artifact, _)) => artifact,
                        Err(error) => {
                            pending.remove(position);
                            if enqueued.remove(&seq) {
                                queued -= 1;
                            }
                            let deadline = self.effective_deadline(request);
                            fail(
                                &mut outcomes,
                                &mut trace,
                                seq,
                                request,
                                deadline,
                                now,
                                error,
                            );
                            continue 'admit;
                        }
                    };
                    let estimate = estimate_resident_bytes(&artifact, &request.model);
                    if let Some(cap) = self.effective_tenant_cap(&request.tenant) {
                        let used = tenant_bytes.get(&request.tenant).copied().unwrap_or(0);
                        if used.saturating_add(estimate) > cap {
                            if used == 0 {
                                // The cap cannot fit this model at all.
                                pending.remove(position);
                                if enqueued.remove(&seq) {
                                    queued -= 1;
                                }
                                let deadline = self.effective_deadline(request);
                                fail(
                                    &mut outcomes,
                                    &mut trace,
                                    seq,
                                    request,
                                    deadline,
                                    now,
                                    SimError::OutOfMemory {
                                        pool: format!("tenant `{}` cap", request.tenant),
                                        requested: estimate,
                                        available: cap,
                                        capacity: cap,
                                    },
                                );
                                continue 'admit;
                            }
                            // Defer until the tenant's in-flight work drains.
                            candidates.remove(choice);
                            continue;
                        }
                    }

                    pending.remove(position);
                    if enqueued.remove(&seq) {
                        queued -= 1;
                    }
                    let stream = lower_artifact(&artifact, &request.model, device, &self.config);
                    let total_commands = stream.len();
                    let floor = (request.arrival_ms - epoch).max(0.0);
                    let stepper = StreamStepper::new(stream)?.with_floor_ms(floor);
                    if exclusive {
                        tracker.reset_trace();
                    }
                    *tenant_bytes.entry(request.tenant.clone()).or_insert(0) += estimate;
                    let predicted_ms = estimates.get(&seq).copied().unwrap_or(0.0);
                    let start_ms = now.max(request.arrival_ms);
                    let admission_laxity_ms = deadlines
                        .get(&seq)
                        .copied()
                        .flatten()
                        .map(|deadline| deadline - start_ms - predicted_ms);
                    if trace.enabled() {
                        let lane = TraceLane::Request(seq);
                        trace.span(
                            TraceKind::QueueWait,
                            lane,
                            &format!("queue {}", request.model.abbr),
                            request.arrival_ms,
                            start_ms,
                        );
                        let label = match admission_laxity_ms {
                            Some(laxity) => {
                                format!("admit {} laxity {laxity:.3} ms", request.model.abbr)
                            }
                            None => format!("admit {}", request.model.abbr),
                        };
                        trace.instant(TraceKind::Admit, lane, &label, start_ms);
                    }
                    let carry = carry_map.get(&seq);
                    in_flight.push(InFlight {
                        meta: FlightMeta {
                            seq,
                            abbr: request.model.abbr.clone(),
                            tenant: request.tenant.clone(),
                            priority: request.priority,
                            // Metrics measure from true submission, not from
                            // the recovery planner's re-dispatch floor.
                            arrival_ms: carry.map_or(request.arrival_ms, |c| c.original_arrival_ms),
                            deadline_ms: self.effective_deadline(request),
                            start_ms,
                            cache_hit,
                            streamed_fraction: artifact.streamed_fraction(),
                            estimate_bytes: estimate,
                            predicted_ms,
                            total_commands,
                            admission_laxity_ms,
                            stolen_from: carry
                                .and_then(|c| c.stolen_from)
                                .or_else(|| stolen.get(&seq).copied()),
                            retries: carry.map_or(0, |c| c.retries),
                            failed_over: carry.is_some_and(|c| c.failed_over),
                            trace_start: tracker.trace().len(),
                            order: admit_order,
                            preemptions: 0,
                            suspended_ms: 0.0,
                            penalty_ms: 0.0,
                            run_start_ms: start_ms,
                            transfer_intervals: Vec::new(),
                            compute_intervals: Vec::new(),
                        },
                        stepper,
                    });
                    admit_order += 1;
                    continue 'admit;
                }
                break 'admit;
            }

            if in_flight.is_empty() {
                if pending.is_empty() && suspended.is_empty() {
                    break;
                }
                // Nothing admissible right now (all candidates deferred on
                // tenant caps with no in-flight work — prevented by the
                // `used == 0` fail path and the unrecoverable-resume path,
                // but keep the loop safe).
                continue;
            }

            // ---------------- step ----------------
            let mut chosen = 0;
            let mut chosen_start = f64::INFINITY;
            for (i, flight) in in_flight.iter().enumerate() {
                let start = flight
                    .stepper
                    .peek_start_ms(&clocks)
                    .unwrap_or(f64::INFINITY);
                let earlier = start < chosen_start
                    || (start == chosen_start && flight.meta.order < in_flight[chosen].meta.order);
                if i == 0 || earlier {
                    chosen = i;
                    chosen_start = start;
                }
            }
            let base = if exclusive { 0.0 } else { epoch };

            // ---------------- fault injection ----------------
            if chaos_active && chosen_start.is_finite() {
                let would_start = epoch + chosen_start;
                if lost_at_ms.is_some_and(|t| would_start + 1e-9 >= t) {
                    // The device dies before this command starts: everything
                    // on it — running, suspended, queued — is stranded. Hand
                    // it all to the recovery planner as orphans and stop the
                    // timeline.
                    let loss_ms = lost_at_ms.expect("just checked");
                    lost = true;
                    makespan = makespan.max(loss_ms);
                    if trace.enabled() {
                        trace.instant(
                            TraceKind::Fault,
                            TraceLane::Host,
                            &format!("fault device-loss {}", device.name),
                            loss_ms,
                        );
                    }
                    let carry_over = self.recovery.failover;
                    for flight in in_flight.drain(..) {
                        let seq = flight.meta.seq;
                        let local_now =
                            ((loss_ms - epoch).max(0.0)).max(flight.stepper.makespan_ms());
                        let completion = epoch + local_now;
                        if trace.enabled() {
                            trace.span(
                                TraceKind::Running,
                                TraceLane::Request(seq),
                                &format!("run {}", flight.meta.abbr),
                                flight.meta.run_start_ms,
                                completion,
                            );
                            trace.instant(
                                TraceKind::Fault,
                                TraceLane::Request(seq),
                                &format!("fault device-loss {}", flight.meta.abbr),
                                completion,
                            );
                        }
                        let carry = carry_map.get(&seq).copied();
                        let (retries, hops) = carry.map_or((0, 0), |c| (c.retries, c.hops));
                        let mut stepper = flight.stepper;
                        let meta = flight.meta;
                        let resume = if carry_over {
                            // Freeze the in-flight state for a same-spec
                            // sibling to resume from.
                            let suspension = stepper.suspend_evicting_traced(
                                &clocks,
                                &mut tracker,
                                local_now,
                                epoch,
                                &mut trace,
                                TraceLane::Request(seq),
                                &meta.abbr,
                            )?;
                            Some((meta.clone(), suspension))
                        } else {
                            stepper.release_remaining(&mut tracker, base + local_now)?;
                            None
                        };
                        let outcome = meta.into_outcome(
                            &device.name,
                            device_index,
                            completion,
                            0.0,
                            Some(SimError::Fault {
                                kind: FaultKind::DeviceLoss,
                                at_ms: loss_ms,
                            }),
                            None,
                        );
                        orphans.push(ServeOrphan {
                            outcome,
                            kind: FaultKind::DeviceLoss,
                            retries,
                            hops,
                            resume,
                        });
                    }
                    for s in suspended.drain(..) {
                        let seq = s.meta.seq;
                        let at = loss_ms.max(s.suspended_at_ms);
                        if trace.enabled() {
                            trace.span(
                                TraceKind::Suspended,
                                TraceLane::Request(seq),
                                &format!("suspended {}", s.meta.abbr),
                                s.suspended_at_ms,
                                at,
                            );
                            trace.instant(
                                TraceKind::Fault,
                                TraceLane::Request(seq),
                                &format!("fault device-loss {}", s.meta.abbr),
                                at,
                            );
                        }
                        let carry = carry_map.get(&seq).copied();
                        let (retries, hops) = carry.map_or((0, 0), |c| (c.retries, c.hops));
                        let mut meta = s.meta;
                        meta.suspended_ms += (at - s.suspended_at_ms).max(0.0);
                        let resume = carry_over.then(|| (meta.clone(), s.suspension));
                        let outcome = meta.into_outcome(
                            &device.name,
                            device_index,
                            at,
                            0.0,
                            Some(SimError::Fault {
                                kind: FaultKind::DeviceLoss,
                                at_ms: loss_ms,
                            }),
                            None,
                        );
                        orphans.push(ServeOrphan {
                            outcome,
                            kind: FaultKind::DeviceLoss,
                            retries,
                            hops,
                            resume,
                        });
                    }
                    for (seq, request) in pending.drain(..) {
                        let at = loss_ms.max(request.arrival_ms);
                        if trace.enabled() {
                            trace.instant(
                                TraceKind::Fault,
                                TraceLane::Request(seq),
                                &format!("fault device-loss {}", request.model.abbr),
                                at,
                            );
                        }
                        let carry = carry_map.get(&seq).copied();
                        let (retries, hops) = carry.map_or((0, 0), |c| (c.retries, c.hops));
                        let deadline = self.effective_deadline(request);
                        let outcome = waiting_failure(
                            seq,
                            request,
                            deadline,
                            at,
                            SimError::Fault {
                                kind: FaultKind::DeviceLoss,
                                at_ms: loss_ms,
                            },
                        );
                        orphans.push(ServeOrphan {
                            outcome,
                            kind: FaultKind::DeviceLoss,
                            retries,
                            hops,
                            resume: None,
                        });
                    }
                    if exclusive {
                        stitched.append_shifted(tracker.trace(), epoch);
                    }
                    break;
                }
                let flight = &in_flight[chosen];
                let executed = flight
                    .meta
                    .total_commands
                    .saturating_sub(flight.stepper.remaining());
                let attempt = carry_map
                    .get(&flight.meta.seq)
                    .map_or(0, ServeCarry::attempt);
                if let Some(kind) =
                    self.fault_plan
                        .command_fault(device_index, flight.meta.seq, executed, attempt)
                {
                    // A transient injected fault: fail this attempt exactly
                    // like a modelled mid-run error, but channel it to the
                    // recovery planner instead of the final outcome list.
                    faults += 1;
                    let mut flight = in_flight.remove(chosen);
                    let now_local = chosen_start.max(flight.stepper.makespan_ms());
                    flight
                        .stepper
                        .release_remaining(&mut tracker, base + now_local)?;
                    if exclusive {
                        stitched.append_shifted(tracker.trace(), epoch);
                        tracker.evict_all(epoch + now_local);
                        stitched.record(epoch + now_local, 0);
                        epoch += now_local;
                        clocks.reset();
                    }
                    decrement(
                        &mut tenant_bytes,
                        &flight.meta.tenant,
                        flight.meta.estimate_bytes,
                    );
                    let completion = if exclusive { epoch } else { base + now_local };
                    makespan = makespan.max(completion);
                    let seq = flight.meta.seq;
                    if trace.enabled() {
                        trace.span(
                            TraceKind::Running,
                            TraceLane::Request(seq),
                            &format!("run {}", flight.meta.abbr),
                            flight.meta.run_start_ms,
                            completion,
                        );
                        trace.instant(
                            TraceKind::Fault,
                            TraceLane::Request(seq),
                            &format!("fault {kind} {}", flight.meta.abbr),
                            completion,
                        );
                    }
                    let carry = carry_map.get(&seq).copied();
                    let (retries, hops) = carry.map_or((0, 0), |c| (c.retries, c.hops));
                    let outcome = flight.meta.into_outcome(
                        &device.name,
                        device_index,
                        completion,
                        0.0,
                        Some(SimError::Fault {
                            kind,
                            at_ms: completion,
                        }),
                        None,
                    );
                    orphans.push(ServeOrphan {
                        outcome,
                        kind,
                        retries,
                        hops,
                        resume: None,
                    });
                    continue;
                }
            }

            let step_result = in_flight[chosen].stepper.step_traced(
                &sim,
                &mut clocks,
                &mut tracker,
                base,
                epoch,
                &mut trace,
            );
            match step_result {
                Ok(Some(event)) => {
                    let meta = &mut in_flight[chosen].meta;
                    match event.queue {
                        QueueKind::Transfer => {
                            transfer_busy += event.duration_ms();
                            if event.end_ms > event.start_ms {
                                meta.transfer_intervals.push((event.start_ms, event.end_ms));
                            }
                        }
                        QueueKind::Compute => {
                            compute_busy += event.duration_ms();
                            if event.end_ms > event.start_ms {
                                meta.compute_intervals.push((event.start_ms, event.end_ms));
                            }
                        }
                        QueueKind::Host => {}
                    }
                }
                Ok(None) => {}
                Err(error) => {
                    // The request failed mid-run (modelled OOM): release what
                    // it held and keep serving everyone else.
                    let mut flight = in_flight.remove(chosen);
                    let now_local = flight.stepper.makespan_ms();
                    let now_global = base + now_local;
                    flight.stepper.release_remaining(&mut tracker, now_global)?;
                    if exclusive {
                        stitched.append_shifted(tracker.trace(), epoch);
                        tracker.evict_all(epoch + now_local);
                        stitched.record(epoch + now_local, 0);
                        epoch += now_local;
                        clocks.reset();
                    }
                    decrement(
                        &mut tenant_bytes,
                        &flight.meta.tenant,
                        flight.meta.estimate_bytes,
                    );
                    let completion = if exclusive { epoch } else { now_global };
                    makespan = makespan.max(completion);
                    let run_start = flight.meta.run_start_ms;
                    outcomes.push(flight.meta.into_outcome(
                        &device.name,
                        device_index,
                        completion,
                        0.0,
                        Some(error),
                        None,
                    ));
                    trace_failure(
                        &mut trace,
                        outcomes.last().expect("just pushed"),
                        Some(run_start),
                    );
                    continue;
                }
            }

            // ---------------- completion ----------------
            if !in_flight[chosen].stepper.is_done() {
                continue;
            }
            let flight = in_flight.remove(chosen);
            if exclusive {
                // Legacy path: the request ran in run-local time against a
                // freshly reset trace; finalize exactly like the monolithic
                // executor, stitch, then evict the whole model.
                let outcome_exec = flight.stepper.finish(&sim, &mut tracker);
                let report = ExecutionReport::from_outcome(
                    "FlashMem",
                    &flight.meta.abbr,
                    &outcome_exec,
                    flight.meta.streamed_fraction,
                );
                let total = report.integrated_latency_ms;
                stitched.append_shifted(&report.memory_trace, epoch);
                let completion = epoch + total;
                epoch = completion;
                tracker.evict_all(epoch);
                stitched.record(epoch, 0);
                clocks.reset();
                decrement(
                    &mut tenant_bytes,
                    &flight.meta.tenant,
                    flight.meta.estimate_bytes,
                );
                makespan = makespan.max(completion);
                let peak_memory_mb = report.peak_memory_mb;
                let run_start = flight.meta.run_start_ms;
                outcomes.push(flight.meta.into_outcome(
                    &device.name,
                    device_index,
                    completion,
                    peak_memory_mb,
                    None,
                    Some(report),
                ));
                trace_completion(&mut trace, outcomes.last().expect("just pushed"), run_start);
            } else {
                let mut flight = flight;
                let total_local = flight.stepper.makespan_ms();
                let completion = epoch + total_local;
                tracker.sample(completion);
                flight.stepper.release_remaining(&mut tracker, completion)?;
                let peak_bytes = tracker.trace().samples()[flight.meta.trace_start..]
                    .iter()
                    .map(|s| s.bytes)
                    .max()
                    .unwrap_or(0);
                decrement(
                    &mut tenant_bytes,
                    &flight.meta.tenant,
                    flight.meta.estimate_bytes,
                );
                makespan = makespan.max(completion);
                let run_start = flight.meta.run_start_ms;
                outcomes.push(flight.meta.into_outcome(
                    &device.name,
                    device_index,
                    completion,
                    peak_bytes as f64 / MIB,
                    None,
                    None,
                ));
                trace_completion(&mut trace, outcomes.last().expect("just pushed"), run_start);
            }
        }

        let mem_trace = if exclusive {
            stitched
        } else {
            tracker.trace().clone()
        };
        let completed = outcomes.iter().filter(|o| o.succeeded()).count();
        let report = DeviceReport {
            device: device.name.clone(),
            requests: total_assigned,
            completed,
            makespan_ms: makespan,
            transfer_busy_ms: transfer_busy,
            compute_busy_ms: compute_busy,
            transfer_busy_fraction: if makespan > 0.0 {
                transfer_busy / makespan
            } else {
                0.0
            },
            compute_busy_fraction: if makespan > 0.0 {
                compute_busy / makespan
            } else {
                0.0
            },
            peak_memory_mb: mem_trace.peak_bytes() as f64 / MIB,
            queue_depth_high_water: queue_high_water,
            memory_trace: mem_trace,
        };
        Ok(DeviceRun {
            outcomes,
            report,
            trace,
            orphans,
            lost,
            faults,
        })
    }

    /// Preemption phase of the device loop: while every slot is busy and an
    /// arrived (or previously suspended) request
    /// [`outranks`](SchedulePolicy::outranks) the policy's chosen
    /// [`victim`](SchedulePolicy::victim) among the in-flight inferences,
    /// suspend that victim at its next command boundary and evict its
    /// residency. Under the priority policies a candidate outranks by
    /// strictly higher priority; under the deadline-triggered policy it
    /// outranks when its laxity would go negative waiting for the victim
    /// while the victim stays slack. Candidates that could not actually use
    /// the freed slot — a suspended request whose residency would still not
    /// fit, or a pending request its tenant cap would defer — never trigger
    /// a preemption, so the loop cannot thrash.
    #[allow(clippy::too_many_arguments)]
    fn preempt_outranked(
        &self,
        engine: &FlashMem,
        device: &DeviceSpec,
        slots: usize,
        epoch: f64,
        clocks: &QueueClocks,
        tracker: &mut MemoryTracker,
        pending: &[(usize, &ServeRequest)],
        tenant_bytes: &HashMap<String, u64>,
        estimate_memo: &mut HashMap<usize, u64>,
        deadlines: &HashMap<usize, Option<f64>>,
        estimates: &HashMap<usize, f64>,
        gate: Option<&HashSet<usize>>,
        in_flight: &mut Vec<InFlight>,
        suspended: &mut Vec<Suspended>,
        trace: &mut TraceRecorder,
    ) -> SimResult<()> {
        while in_flight.len() >= slots && !in_flight.is_empty() {
            let now = epoch
                + in_flight
                    .iter()
                    .filter_map(|f| f.stepper.peek_start_ms(clocks))
                    .fold(f64::INFINITY, f64::min);
            if !now.is_finite() {
                return Ok(());
            }
            let ctx = PolicyContext::at(now);
            let flights: Vec<InFlightEntry> = in_flight
                .iter()
                .map(|f| InFlightEntry {
                    seq: f.meta.seq,
                    priority: f.meta.priority,
                    order: f.meta.order,
                    deadline_ms: f.meta.absolute_deadline_ms(),
                    estimated_remaining_ms: f.meta.estimated_remaining_ms(f.stepper.remaining()),
                })
                .collect();
            let victim_idx = self.policy.victim(&flights, &ctx).min(flights.len() - 1);
            let victim_entry = flights[victim_idx];
            let (victim_unified, victim_texture) =
                in_flight[victim_idx].stepper.resident_split(tracker);

            let mut candidates =
                arrived_candidates(pending, suspended, now, deadlines, estimates, gate);

            let mut trigger = false;
            while !candidates.is_empty() {
                let choice = self
                    .policy
                    .pick(&candidates, &ctx)
                    .min(candidates.len() - 1);
                let cand = candidates[choice];
                if !self.policy.outranks(&cand, &victim_entry, &ctx) {
                    // Keep scanning in the policy's preference order: pick
                    // order need not be monotone with outranking (under the
                    // deadline-triggered policy the least-laxity candidate
                    // can be too *long* to rescue while a shorter, slightly
                    // slacker one qualifies).
                    candidates.remove(choice);
                    continue;
                }
                if let Some(pos) = suspended.iter().position(|s| s.meta.seq == cand.seq) {
                    // Only preempt for a suspended request whose residency
                    // fits once the victim is evicted.
                    let (need_unified, need_texture) = suspended[pos].suspension.evicted_split();
                    let headroom = tracker.budget().saturating_sub(tracker.total_in_use());
                    let fits = need_unified <= tracker.unified().available() + victim_unified
                        && need_texture <= tracker.texture().available() + victim_texture
                        && need_unified + need_texture
                            <= headroom + victim_unified + victim_texture;
                    if !fits {
                        candidates.remove(choice);
                        continue;
                    }
                } else {
                    // Only preempt for a pending request its tenant cap
                    // would actually let in.
                    let request = pending
                        .iter()
                        .find(|(seq, _)| *seq == cand.seq)
                        .map(|(_, r)| *r)
                        .expect("candidate is pending");
                    if let Some(cap) = self.effective_tenant_cap(&request.tenant) {
                        // Memoized per request: this phase runs at every
                        // command boundary, and repeated cache probes would
                        // inflate the plan-cache hit counters.
                        let estimate = match estimate_memo.get(&cand.seq) {
                            Some(&estimate) => estimate,
                            None => match self.cache.compile(engine, &request.model, device) {
                                Ok((artifact, _)) => {
                                    let estimate =
                                        estimate_resident_bytes(&artifact, &request.model);
                                    estimate_memo.insert(cand.seq, estimate);
                                    estimate
                                }
                                Err(_) => {
                                    // Compilation failures surface at
                                    // admission.
                                    candidates.remove(choice);
                                    continue;
                                }
                            },
                        };
                        let used = tenant_bytes.get(&request.tenant).copied().unwrap_or(0);
                        if used.saturating_add(estimate) > cap {
                            candidates.remove(choice);
                            continue;
                        }
                    }
                }
                trigger = true;
                break;
            }
            if !trigger {
                return Ok(());
            }

            // Suspend the victim at its current command boundary: commands it
            // already issued drain, no new ones are issued, and its resident
            // memory is evicted for the higher-priority work.
            let flight = in_flight.remove(victim_idx);
            let local_now = (now - epoch).max(flight.stepper.makespan_ms());
            let mut meta = flight.meta;
            meta.preemptions += 1;
            if trace.enabled() {
                trace.span(
                    TraceKind::Running,
                    TraceLane::Request(meta.seq),
                    &format!("run {}", meta.abbr),
                    meta.run_start_ms,
                    epoch + local_now,
                );
            }
            let suspension = flight.stepper.suspend_evicting_traced(
                clocks,
                tracker,
                local_now,
                epoch,
                trace,
                TraceLane::Request(meta.seq),
                &meta.abbr,
            )?;
            suspended.push(Suspended {
                meta,
                suspended_at_ms: epoch + local_now,
                suspension,
                ready_ms: f64::NEG_INFINITY,
            });
        }
        Ok(())
    }
}

fn decrement(tenant_bytes: &mut HashMap<String, u64>, tenant: &str, bytes: u64) {
    if let Some(used) = tenant_bytes.get_mut(tenant) {
        *used = used.saturating_sub(bytes);
    }
}

/// Close a completed request's lifecycle on its trace lane: the final
/// `Running` span, a completion instant, and — when the deadline was missed
/// — an [`TraceKind::SloMiss`] instant tagged with the miss cause.
fn trace_completion(trace: &mut TraceRecorder, outcome: &RequestOutcome, run_start_ms: f64) {
    if !trace.enabled() {
        return;
    }
    let lane = TraceLane::Request(outcome.seq);
    trace.span(
        TraceKind::Running,
        lane,
        &format!("run {}", outcome.model),
        run_start_ms,
        outcome.completion_ms,
    );
    trace.instant(
        TraceKind::Complete,
        lane,
        &format!("complete {}", outcome.model),
        outcome.completion_ms,
    );
    if let Some(cause) = outcome.miss_cause() {
        trace.instant(
            TraceKind::SloMiss,
            lane,
            &format!("slo miss {} ({cause:?})", outcome.model),
            outcome.completion_ms,
        );
    }
}

/// Close a failed request's lifecycle on its trace lane; `run_start_ms` is
/// `Some` when the request had started executing (mid-run failure) so the
/// partial `Running` span is closed too.
fn trace_failure(trace: &mut TraceRecorder, outcome: &RequestOutcome, run_start_ms: Option<f64>) {
    if !trace.enabled() {
        return;
    }
    let lane = TraceLane::Request(outcome.seq);
    if let Some(run_start) = run_start_ms {
        trace.span(
            TraceKind::Running,
            lane,
            &format!("run {}", outcome.model),
            run_start,
            outcome.completion_ms,
        );
    }
    trace.instant(
        TraceKind::Fail,
        lane,
        &format!("fail {}", outcome.model),
        outcome.completion_ms,
    );
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field(
                "fleet",
                &self.fleet.iter().map(|d| &d.name).collect::<Vec<_>>(),
            )
            .field("policy", &self.policy.name())
            .field("tenant_caps", &self.tenant_caps)
            .field("fleet_tenant_caps", &self.fleet_tenant_caps)
            .field("tenant_slos", &self.tenant_slos)
            .field("overload", &self.overload)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PreemptivePriorityPolicy, PriorityPolicy};
    use flashmem_graph::ModelZoo;

    fn requests(n: usize) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::new(
                    if i % 2 == 0 {
                        ModelZoo::gptneo_small()
                    } else {
                        ModelZoo::vit()
                    },
                    format!("tenant-{}", i % 2),
                )
            })
            .collect()
    }

    #[test]
    fn fifo_run_completes_every_request_in_order() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        );
        let report = engine.run(&requests(4)).unwrap();
        assert_eq!(report.completed(), 4);
        assert_eq!(report.policy, "fifo");
        // Exclusive FIFO on one device: completions are strictly ordered.
        for pair in report.outcomes.windows(2) {
            assert!(pair[1].completion_ms > pair[0].completion_ms);
            assert!(pair[1].start_ms >= pair[0].completion_ms - 1e-9);
        }
        // Repeated models hit the plan cache.
        assert!(report.cache.hits >= 2, "{}", report.cache);
        assert!(report.throughput_rps > 0.0);
        assert!(report.devices[0].compute_busy_fraction > 0.0);
        assert!(report.devices[0].transfer_busy_fraction > 0.0);
        // Non-preemptive: nothing was suspended, SLOs vacuously attained.
        assert_eq!(report.preemptions, 0);
        assert_eq!(report.slo.tracked, 0);
        assert_eq!(report.slo.attainment(), 1.0);
    }

    #[test]
    fn concurrent_slots_interleave_and_beat_exclusive_makespan() {
        let device = DeviceSpec::oneplus_12();
        let reqs = requests(4);
        let exclusive = ServeEngine::new(vec![device.clone()], FlashMemConfig::memory_priority())
            .with_policy(Box::new(PriorityPolicy::new()))
            .run(&reqs)
            .unwrap();
        let concurrent = ServeEngine::new(vec![device], FlashMemConfig::memory_priority())
            .with_policy(Box::new(PriorityPolicy::with_max_in_flight(2)))
            .run(&reqs)
            .unwrap();
        assert_eq!(concurrent.completed(), 4);
        assert!(
            concurrent.makespan_ms() < exclusive.makespan_ms(),
            "interleaving {} vs exclusive {}",
            concurrent.makespan_ms(),
            exclusive.makespan_ms()
        );
        // Sharing the queues cannot beat the sum of pure compute/load time:
        // utilization goes up instead.
        assert!(
            concurrent.devices[0].transfer_busy_fraction
                > exclusive.devices[0].transfer_busy_fraction - 1e-9
        );
    }

    #[test]
    fn arrivals_gate_execution() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        );
        let reqs = vec![ServeRequest::new(ModelZoo::gptneo_small(), "a").with_arrival_ms(10_000.0)];
        let report = engine.run(&reqs).unwrap();
        let outcome = &report.outcomes[0];
        assert!(outcome.start_ms >= 10_000.0);
        assert_eq!(outcome.queue_wait_ms, 0.0);
        assert!(outcome.completion_ms > 10_000.0);
    }

    #[test]
    fn tenant_cap_smaller_than_model_fails_fast() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_tenant_cap("tiny", 1024);
        let reqs = vec![ServeRequest::new(ModelZoo::gptneo_small(), "tiny")];
        let report = engine.run(&reqs).unwrap();
        assert_eq!(report.failed(), 1);
        assert!(matches!(
            report.outcomes[0].error,
            Some(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn empty_fleet_is_rejected_instead_of_underflowing_placement() {
        // Regression: placement used to compute `place(..).min(fleet_len - 1)`
        // which underflows at fleet_len == 0 (hidden by a silent
        // default-device fallback in `new`). An empty fleet is now a proper
        // error — even with zero requests, and before any placement runs.
        let engine = ServeEngine::new(Vec::new(), FlashMemConfig::memory_priority());
        assert!(engine.fleet().is_empty());
        for requests in [Vec::new(), requests(2)] {
            match engine.run(&requests) {
                Err(SimError::InvalidParameter { message }) => {
                    assert!(message.contains("empty fleet"), "{message}");
                }
                other => panic!("expected an empty-fleet error, got {other:?}"),
            }
        }
    }

    #[test]
    fn engine_is_shareable_across_pool_workers() {
        // The fleet fan-out hands `&self` to pool workers: the engine (and
        // everything a policy factory produces) must stay `Send + Sync`.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeEngine>();
        assert_send_sync::<Box<dyn SchedulePolicy>>();
    }

    #[test]
    fn tenant_slo_sets_effective_deadlines() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_tenant_slo("tenant-0", 1e9);
        let report = engine.run(&requests(2)).unwrap();
        // tenant-0's request inherits the tenant default; tenant-1's has none.
        let t0 = report.outcomes.iter().find(|o| o.tenant == "tenant-0");
        let t1 = report.outcomes.iter().find(|o| o.tenant == "tenant-1");
        assert_eq!(t0.unwrap().deadline_ms, Some(1e9));
        assert_eq!(t1.unwrap().deadline_ms, None);
        assert_eq!(report.slo.tracked, 1);
        assert_eq!(report.slo.met, 1);
        // A request-level deadline overrides the tenant default.
        let reqs = vec![ServeRequest::new(ModelZoo::vit(), "tenant-0").with_deadline_ms(0.5)];
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_tenant_slo("tenant-0", 1e9);
        let report = engine.run(&reqs).unwrap();
        assert_eq!(report.outcomes[0].deadline_ms, Some(0.5));
        assert_eq!(report.slo.missed(), 1);
    }

    #[test]
    fn preemptive_policy_suspends_low_priority_work() {
        // A long low-priority inference arrives first; a high-priority one
        // arrives while it runs. Under the preemptive policy the later
        // arrival must preempt (preemption count > 0) and every request must
        // still complete.
        let reqs = vec![
            ServeRequest::new(ModelZoo::gptneo_small(), "background").with_priority(0),
            ServeRequest::new(ModelZoo::vit(), "camera")
                .with_priority(5)
                .with_arrival_ms(50.0),
        ];
        let report = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_policy(Box::new(PreemptivePriorityPolicy::new()))
        .run(&reqs)
        .unwrap();
        assert_eq!(report.completed(), 2, "{report}");
        assert!(report.preemptions > 0, "{report}");
        let background = &report.outcomes[0];
        assert!(background.preemptions > 0);
        assert!(background.suspended_ms > 0.0);
        // The preempted request pays for re-residency.
        assert!(background.resume_penalty_ms > 0.0);
    }
}
