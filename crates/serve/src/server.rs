//! The multi-tenant serving engine: a hand-rolled (tokio-free) discrete
//! event loop that time-shares each device's dual command queues across many
//! in-flight inferences.
//!
//! ## How time advances
//!
//! Every admitted request owns a [`StreamStepper`] over its lowered command
//! stream. Devices are independent timelines; on each device the loop
//! repeatedly (1) admits arrived requests into free slots in policy order,
//! then (2) advances whichever in-flight stepper can start its next command
//! earliest on the shared [`QueueClocks`]. One inference's disk loads
//! therefore fill transfer-queue gaps left by another inference's kernels —
//! per-layer interleaving, not back-to-back replay.
//!
//! ## Exclusive mode and legacy equivalence
//!
//! When the policy allows a single in-flight inference
//! (`max_in_flight() == 1`, e.g. [`FifoPolicy`]), each
//! request runs in run-local time against freshly reset queue clocks, its
//! memory-trace segment is stitched onto the device timeline, and its weights
//! are evicted before the next admission — the *identical* float arithmetic
//! of the legacy `MultiModelRunner::run_fifo`, which is why the FIFO policy
//! reproduces Figure 6 traces byte for byte (see `tests/scheduler.rs`).
//!
//! Under concurrent policies the device keeps one global timeline (re-based
//! only across idle gaps) and a shared memory tracker, and a finished
//! request's remaining allocations are released individually. The tracker
//! applies memory effects in event order, which the earliest-start stepping
//! rule keeps near time order; tiny reorderings across concurrent streams are
//! an accepted modelling artifact.

use std::collections::HashMap;
use std::sync::Arc;

use flashmem_core::cache::ArtifactCache;
use flashmem_core::engine::CompiledArtifact;
use flashmem_core::executor::RUNTIME_OVERHEAD_BYTES;
use flashmem_core::{ExecutionReport, FlashMem, FlashMemConfig, KernelRewriter, StreamingExecutor};
use flashmem_gpu_sim::engine::{
    CommandStream, GpuSimulator, QueueClocks, QueueKind, SimConfig, StreamStepper,
};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::{DeviceSpec, SimError};
use flashmem_graph::ModelSpec;
use flashmem_profiler::LoweringOptions;

use crate::metrics::{DeviceReport, LatencySummary, RequestOutcome, ServeReport};
use crate::policy::{FifoPolicy, PendingEntry, SchedulePolicy};
use crate::request::ServeRequest;

const MIB: f64 = 1024.0 * 1024.0;

/// Lower a compiled artifact to the command stream the event loop steps.
///
/// Streaming artifacts reuse the [`StreamingExecutor`] lowering the one-shot
/// runtime uses; preload artifacts *are* command streams; naive plans lower
/// through the executor without kernel rewriting, as in the Figure 9 strawmen.
pub fn lower_artifact(
    artifact: &CompiledArtifact,
    model: &ModelSpec,
    device: &DeviceSpec,
    config: &FlashMemConfig,
) -> CommandStream {
    match artifact {
        CompiledArtifact::Streaming(compiled) => {
            let rewriter = if config.enable_kernel_rewriting {
                KernelRewriter::pipelined()
            } else {
                KernelRewriter::naive()
            };
            StreamingExecutor::new(device.clone(), rewriter.lowering_options())
                .with_embedded_transforms(config.enable_kernel_rewriting)
                .compile(model.graph(), &compiled.fusion, &compiled.plan)
        }
        CompiledArtifact::Preload(stream) => stream.clone(),
        CompiledArtifact::NaivePlan { fusion, plan } => {
            StreamingExecutor::new(device.clone(), LoweringOptions::texture_framework())
                .with_embedded_transforms(false)
                .compile(model.graph(), fusion, plan)
        }
    }
}

/// Estimated resident bytes of one in-flight request — the admission-control
/// quantity behind per-tenant memory caps. Runtime overhead + double-buffered
/// activations + everything the plan keeps resident, plus the largest
/// streamed weight as staging headroom.
pub fn estimate_resident_bytes(artifact: &CompiledArtifact, model: &ModelSpec) -> u64 {
    let base = RUNTIME_OVERHEAD_BYTES + (2 * model.graph().max_activation_bytes()).max(1);
    match artifact {
        CompiledArtifact::Streaming(compiled) => {
            base + plan_resident_bytes(compiled.plan.weights())
        }
        CompiledArtifact::NaivePlan { plan, .. } => base + plan_resident_bytes(plan.weights()),
        CompiledArtifact::Preload(stream) => {
            // No plan to consult: every allocation in the stream is an upper
            // bound on what can be live at once.
            base + stream
                .commands()
                .iter()
                .filter_map(|c| match &c.kind {
                    flashmem_gpu_sim::engine::CommandKind::Alloc { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .sum::<u64>()
        }
    }
}

fn plan_resident_bytes(weights: &[flashmem_core::WeightSchedule]) -> u64 {
    let preloaded: u64 = weights
        .iter()
        .filter(|w| w.preloaded)
        .map(|w| w.bytes)
        .sum();
    let largest_streamed = weights
        .iter()
        .filter(|w| !w.preloaded)
        .map(|w| w.bytes)
        .max()
        .unwrap_or(0);
    preloaded + largest_streamed
}

/// One admitted, in-flight request on a device.
struct InFlight {
    seq: usize,
    abbr: String,
    tenant: String,
    priority: u8,
    arrival_ms: f64,
    start_ms: f64,
    cache_hit: bool,
    streamed_fraction: f64,
    estimate_bytes: u64,
    trace_start: usize,
    order: usize,
    stepper: StreamStepper,
}

/// The multi-tenant serving engine over a fleet of simulated devices.
pub struct ServeEngine {
    fleet: Vec<DeviceSpec>,
    config: FlashMemConfig,
    policy: Box<dyn SchedulePolicy>,
    cache: Arc<ArtifactCache>,
    tenant_caps: HashMap<String, u64>,
}

impl ServeEngine {
    /// A FIFO engine over `fleet` (an empty fleet falls back to the default
    /// flagship device) running FlashMem under `config`.
    pub fn new(fleet: Vec<DeviceSpec>, config: FlashMemConfig) -> Self {
        let fleet = if fleet.is_empty() {
            vec![DeviceSpec::default()]
        } else {
            fleet
        };
        ServeEngine {
            fleet,
            config,
            policy: Box::new(FifoPolicy),
            cache: Arc::new(ArtifactCache::new()),
            tenant_caps: HashMap::new(),
        }
    }

    /// Replace the scheduling policy (builder style).
    pub fn with_policy(mut self, policy: Box<dyn SchedulePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Share an existing plan cache (e.g. the benchmark harness's) instead of
    /// a private one.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Cap `tenant`'s estimated resident bytes per device. Requests that
    /// would exceed the cap wait for the tenant's in-flight work to finish;
    /// a request whose own working set exceeds the cap fails outright.
    pub fn with_tenant_cap(mut self, tenant: impl Into<String>, bytes: u64) -> Self {
        self.tenant_caps.insert(tenant.into(), bytes);
        self
    }

    /// The fleet being served.
    pub fn fleet(&self) -> &[DeviceSpec] {
        &self.fleet
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Serve `requests` (any order; arrival times need not be sorted) and
    /// report per-request outcomes, per-device utilization and latency
    /// percentiles.
    ///
    /// Per-request failures (out-of-memory, tenant caps) are recorded in the
    /// outcomes, not propagated.
    ///
    /// # Errors
    ///
    /// Returns an error only for malformed command streams — an internal
    /// invariant violation, not a modelled outcome.
    pub fn run(&self, requests: &[ServeRequest]) -> SimResult<ServeReport> {
        let fleet_len = self.fleet.len();
        let mut per_device: Vec<Vec<(usize, &ServeRequest)>> = vec![Vec::new(); fleet_len];
        for (seq, request) in requests.iter().enumerate() {
            let device = self
                .policy
                .place(request, seq, fleet_len)
                .min(fleet_len - 1);
            per_device[device].push((seq, request));
        }

        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut devices = Vec::with_capacity(fleet_len);
        for (index, device) in self.fleet.iter().enumerate() {
            let assigned = std::mem::take(&mut per_device[index]);
            let (mut device_outcomes, report) = self.run_device(index, device, assigned)?;
            outcomes.append(&mut device_outcomes);
            devices.push(report);
        }
        outcomes.sort_by_key(|o| o.seq);

        let latencies: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.succeeded())
            .map(|o| o.latency_ms)
            .collect();
        let latency = LatencySummary::from_latencies(&latencies);
        let makespan = devices
            .iter()
            .map(|d| d.makespan_ms)
            .fold(0.0_f64, f64::max);
        let throughput_rps = if makespan > 0.0 {
            latencies.len() as f64 * 1000.0 / makespan
        } else {
            0.0
        };
        Ok(ServeReport {
            policy: self.policy.name().to_string(),
            outcomes,
            devices,
            latency,
            throughput_rps,
            cache: self.cache.stats(),
        })
    }

    /// Run one device's timeline to completion.
    #[allow(clippy::too_many_lines)]
    fn run_device(
        &self,
        device_index: usize,
        device: &DeviceSpec,
        assigned: Vec<(usize, &ServeRequest)>,
    ) -> SimResult<(Vec<RequestOutcome>, DeviceReport)> {
        let engine = FlashMem::new(device.clone()).with_config(self.config.clone());
        let sim = GpuSimulator::new(device.clone(), SimConfig::default());
        let mut tracker = MemoryTracker::for_device(device);
        let slots = self.policy.max_in_flight().max(1);
        let exclusive = slots == 1;

        let total_assigned = assigned.len();
        let mut pending = assigned;
        pending.sort_by(|a, b| {
            a.1.arrival_ms
                .partial_cmp(&b.1.arrival_ms)
                .expect("arrival times are finite")
                .then(a.0.cmp(&b.0))
        });

        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut epoch = 0.0_f64;
        let mut clocks = QueueClocks::new();
        let mut stitched = MemoryTrace::new();
        let mut transfer_busy = 0.0_f64;
        let mut compute_busy = 0.0_f64;
        let mut makespan = 0.0_f64;
        let mut tenant_bytes: HashMap<String, u64> = HashMap::new();
        let mut admit_order = 0_usize;

        let fail = |outcomes: &mut Vec<RequestOutcome>,
                    seq: usize,
                    request: &ServeRequest,
                    now: f64,
                    error: SimError| {
            outcomes.push(RequestOutcome {
                seq,
                model: request.model.abbr.clone(),
                tenant: request.tenant.clone(),
                priority: request.priority,
                device: device.name.clone(),
                device_index,
                arrival_ms: request.arrival_ms,
                start_ms: now,
                completion_ms: now,
                queue_wait_ms: (now - request.arrival_ms).max(0.0),
                latency_ms: (now - request.arrival_ms).max(0.0),
                cache_hit: false,
                peak_memory_mb: 0.0,
                error: Some(error),
                report: None,
            });
        };

        loop {
            // ---------------- admission ----------------
            'admit: while in_flight.len() < slots && !pending.is_empty() {
                if in_flight.is_empty() {
                    // Idle: re-base the device timeline onto a fresh epoch at
                    // the later of "now" and the earliest pending arrival.
                    let earliest = pending
                        .iter()
                        .map(|(_, r)| r.arrival_ms)
                        .fold(f64::INFINITY, f64::min);
                    epoch = (epoch + clocks.horizon_ms()).max(earliest);
                    clocks.reset();
                }
                let now = if in_flight.is_empty() {
                    epoch
                } else {
                    epoch
                        + in_flight
                            .iter()
                            .filter_map(|f| f.stepper.peek_start_ms(&clocks))
                            .fold(f64::INFINITY, f64::min)
                };
                let mut candidates: Vec<PendingEntry> = pending
                    .iter()
                    .filter(|(_, r)| r.arrival_ms <= now)
                    .map(|(seq, r)| PendingEntry {
                        seq: *seq,
                        priority: r.priority,
                        arrival_ms: r.arrival_ms,
                    })
                    .collect();
                while !candidates.is_empty() {
                    let choice = self.policy.pick(&candidates).min(candidates.len() - 1);
                    let chosen_seq = candidates[choice].seq;
                    let position = pending
                        .iter()
                        .position(|(seq, _)| *seq == chosen_seq)
                        .expect("candidate is pending");
                    let (seq, request) = pending[position];

                    let (artifact, cache_hit) =
                        match self.cache.compile(&engine, &request.model, device) {
                            Ok(compiled) => compiled,
                            Err(error) => {
                                pending.remove(position);
                                fail(&mut outcomes, seq, request, now, error);
                                continue 'admit;
                            }
                        };
                    let estimate = estimate_resident_bytes(&artifact, &request.model);
                    if let Some(&cap) = self.tenant_caps.get(&request.tenant) {
                        let used = tenant_bytes.get(&request.tenant).copied().unwrap_or(0);
                        if used.saturating_add(estimate) > cap {
                            if used == 0 {
                                // The cap cannot fit this model at all.
                                pending.remove(position);
                                fail(
                                    &mut outcomes,
                                    seq,
                                    request,
                                    now,
                                    SimError::OutOfMemory {
                                        pool: format!("tenant `{}` cap", request.tenant),
                                        requested: estimate,
                                        available: cap,
                                        capacity: cap,
                                    },
                                );
                                continue 'admit;
                            }
                            // Defer until the tenant's in-flight work drains.
                            candidates.remove(choice);
                            continue;
                        }
                    }

                    pending.remove(position);
                    let stream = lower_artifact(&artifact, &request.model, device, &self.config);
                    let floor = (request.arrival_ms - epoch).max(0.0);
                    let stepper = StreamStepper::new(stream)?.with_floor_ms(floor);
                    if exclusive {
                        tracker.reset_trace();
                    }
                    *tenant_bytes.entry(request.tenant.clone()).or_insert(0) += estimate;
                    in_flight.push(InFlight {
                        seq,
                        abbr: request.model.abbr.clone(),
                        tenant: request.tenant.clone(),
                        priority: request.priority,
                        arrival_ms: request.arrival_ms,
                        start_ms: now.max(request.arrival_ms),
                        cache_hit,
                        streamed_fraction: artifact.streamed_fraction(),
                        estimate_bytes: estimate,
                        trace_start: tracker.trace().len(),
                        order: admit_order,
                        stepper,
                    });
                    admit_order += 1;
                    continue 'admit;
                }
                break 'admit;
            }

            if in_flight.is_empty() {
                if pending.is_empty() {
                    break;
                }
                // Nothing admissible right now (all candidates deferred on
                // tenant caps with no in-flight work — prevented by the
                // `used == 0` fail path, but keep the loop safe).
                continue;
            }

            // ---------------- step ----------------
            let mut chosen = 0;
            let mut chosen_start = f64::INFINITY;
            for (i, flight) in in_flight.iter().enumerate() {
                let start = flight
                    .stepper
                    .peek_start_ms(&clocks)
                    .unwrap_or(f64::INFINITY);
                let earlier = start < chosen_start
                    || (start == chosen_start && flight.order < in_flight[chosen].order);
                if i == 0 || earlier {
                    chosen = i;
                    chosen_start = start;
                }
            }
            let base = if exclusive { 0.0 } else { epoch };
            match in_flight[chosen]
                .stepper
                .step(&sim, &mut clocks, &mut tracker, base)
            {
                Ok(Some(event)) => match event.queue {
                    QueueKind::Transfer => transfer_busy += event.duration_ms(),
                    QueueKind::Compute => compute_busy += event.duration_ms(),
                    QueueKind::Host => {}
                },
                Ok(None) => {}
                Err(error) => {
                    // The request failed mid-run (modelled OOM): release what
                    // it held and keep serving everyone else.
                    let mut flight = in_flight.remove(chosen);
                    let now_local = flight.stepper.makespan_ms();
                    let now_global = base + now_local;
                    flight.stepper.release_remaining(&mut tracker, now_global)?;
                    if exclusive {
                        stitched.append_shifted(tracker.trace(), epoch);
                        tracker.evict_all(epoch + now_local);
                        stitched.record(epoch + now_local, 0);
                        epoch += now_local;
                        clocks.reset();
                    }
                    decrement(&mut tenant_bytes, &flight.tenant, flight.estimate_bytes);
                    makespan = makespan.max(if exclusive { epoch } else { now_global });
                    outcomes.push(RequestOutcome {
                        seq: flight.seq,
                        model: flight.abbr,
                        tenant: flight.tenant,
                        priority: flight.priority,
                        device: device.name.clone(),
                        device_index,
                        arrival_ms: flight.arrival_ms,
                        start_ms: flight.start_ms,
                        completion_ms: if exclusive { epoch } else { now_global },
                        queue_wait_ms: (flight.start_ms - flight.arrival_ms).max(0.0),
                        latency_ms: ((if exclusive { epoch } else { now_global })
                            - flight.arrival_ms)
                            .max(0.0),
                        cache_hit: flight.cache_hit,
                        peak_memory_mb: 0.0,
                        error: Some(error),
                        report: None,
                    });
                    continue;
                }
            }

            // ---------------- completion ----------------
            if !in_flight[chosen].stepper.is_done() {
                continue;
            }
            let flight = in_flight.remove(chosen);
            if exclusive {
                // Legacy path: the request ran in run-local time against a
                // freshly reset trace; finalize exactly like the monolithic
                // executor, stitch, then evict the whole model.
                let seq = flight.seq;
                let outcome_exec = flight.stepper.finish(&sim, &mut tracker);
                let report = ExecutionReport::from_outcome(
                    "FlashMem",
                    &flight.abbr,
                    &outcome_exec,
                    flight.streamed_fraction,
                );
                let total = report.integrated_latency_ms;
                stitched.append_shifted(&report.memory_trace, epoch);
                let completion = epoch + total;
                epoch = completion;
                tracker.evict_all(epoch);
                stitched.record(epoch, 0);
                clocks.reset();
                decrement(&mut tenant_bytes, &flight.tenant, flight.estimate_bytes);
                makespan = makespan.max(completion);
                outcomes.push(RequestOutcome {
                    seq,
                    model: flight.abbr,
                    tenant: flight.tenant,
                    priority: flight.priority,
                    device: device.name.clone(),
                    device_index,
                    arrival_ms: flight.arrival_ms,
                    start_ms: flight.start_ms,
                    completion_ms: completion,
                    queue_wait_ms: (flight.start_ms - flight.arrival_ms).max(0.0),
                    latency_ms: (completion - flight.arrival_ms).max(0.0),
                    cache_hit: flight.cache_hit,
                    peak_memory_mb: report.peak_memory_mb,
                    error: None,
                    report: Some(report),
                });
            } else {
                let mut flight = flight;
                let total_local = flight.stepper.makespan_ms();
                let completion = epoch + total_local;
                tracker.sample(completion);
                flight.stepper.release_remaining(&mut tracker, completion)?;
                let peak_bytes = tracker.trace().samples()[flight.trace_start..]
                    .iter()
                    .map(|s| s.bytes)
                    .max()
                    .unwrap_or(0);
                decrement(&mut tenant_bytes, &flight.tenant, flight.estimate_bytes);
                makespan = makespan.max(completion);
                outcomes.push(RequestOutcome {
                    seq: flight.seq,
                    model: flight.abbr,
                    tenant: flight.tenant,
                    priority: flight.priority,
                    device: device.name.clone(),
                    device_index,
                    arrival_ms: flight.arrival_ms,
                    start_ms: flight.start_ms,
                    completion_ms: completion,
                    queue_wait_ms: (flight.start_ms - flight.arrival_ms).max(0.0),
                    latency_ms: (completion - flight.arrival_ms).max(0.0),
                    cache_hit: flight.cache_hit,
                    peak_memory_mb: peak_bytes as f64 / MIB,
                    error: None,
                    report: None,
                });
            }
        }

        let trace = if exclusive {
            stitched
        } else {
            tracker.trace().clone()
        };
        let completed = outcomes.iter().filter(|o| o.succeeded()).count();
        let report = DeviceReport {
            device: device.name.clone(),
            requests: total_assigned,
            completed,
            makespan_ms: makespan,
            transfer_busy_ms: transfer_busy,
            compute_busy_ms: compute_busy,
            transfer_busy_fraction: if makespan > 0.0 {
                transfer_busy / makespan
            } else {
                0.0
            },
            compute_busy_fraction: if makespan > 0.0 {
                compute_busy / makespan
            } else {
                0.0
            },
            peak_memory_mb: trace.peak_bytes() as f64 / MIB,
            memory_trace: trace,
        };
        Ok((outcomes, report))
    }
}

fn decrement(tenant_bytes: &mut HashMap<String, u64>, tenant: &str, bytes: u64) {
    if let Some(used) = tenant_bytes.get_mut(tenant) {
        *used = used.saturating_sub(bytes);
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field(
                "fleet",
                &self.fleet.iter().map(|d| &d.name).collect::<Vec<_>>(),
            )
            .field("policy", &self.policy.name())
            .field("tenant_caps", &self.tenant_caps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PriorityPolicy;
    use flashmem_graph::ModelZoo;

    fn requests(n: usize) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::new(
                    if i % 2 == 0 {
                        ModelZoo::gptneo_small()
                    } else {
                        ModelZoo::vit()
                    },
                    format!("tenant-{}", i % 2),
                )
            })
            .collect()
    }

    #[test]
    fn fifo_run_completes_every_request_in_order() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        );
        let report = engine.run(&requests(4)).unwrap();
        assert_eq!(report.completed(), 4);
        assert_eq!(report.policy, "fifo");
        // Exclusive FIFO on one device: completions are strictly ordered.
        for pair in report.outcomes.windows(2) {
            assert!(pair[1].completion_ms > pair[0].completion_ms);
            assert!(pair[1].start_ms >= pair[0].completion_ms - 1e-9);
        }
        // Repeated models hit the plan cache.
        assert!(report.cache.hits >= 2, "{}", report.cache);
        assert!(report.throughput_rps > 0.0);
        assert!(report.devices[0].compute_busy_fraction > 0.0);
        assert!(report.devices[0].transfer_busy_fraction > 0.0);
    }

    #[test]
    fn concurrent_slots_interleave_and_beat_exclusive_makespan() {
        let device = DeviceSpec::oneplus_12();
        let reqs = requests(4);
        let exclusive = ServeEngine::new(vec![device.clone()], FlashMemConfig::memory_priority())
            .with_policy(Box::new(PriorityPolicy::new()))
            .run(&reqs)
            .unwrap();
        let concurrent = ServeEngine::new(vec![device], FlashMemConfig::memory_priority())
            .with_policy(Box::new(PriorityPolicy::with_max_in_flight(2)))
            .run(&reqs)
            .unwrap();
        assert_eq!(concurrent.completed(), 4);
        assert!(
            concurrent.makespan_ms() < exclusive.makespan_ms(),
            "interleaving {} vs exclusive {}",
            concurrent.makespan_ms(),
            exclusive.makespan_ms()
        );
        // Sharing the queues cannot beat the sum of pure compute/load time:
        // utilization goes up instead.
        assert!(
            concurrent.devices[0].transfer_busy_fraction
                > exclusive.devices[0].transfer_busy_fraction - 1e-9
        );
    }

    #[test]
    fn arrivals_gate_execution() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        );
        let reqs = vec![ServeRequest::new(ModelZoo::gptneo_small(), "a").with_arrival_ms(10_000.0)];
        let report = engine.run(&reqs).unwrap();
        let outcome = &report.outcomes[0];
        assert!(outcome.start_ms >= 10_000.0);
        assert_eq!(outcome.queue_wait_ms, 0.0);
        assert!(outcome.completion_ms > 10_000.0);
    }

    #[test]
    fn tenant_cap_smaller_than_model_fails_fast() {
        let engine = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_tenant_cap("tiny", 1024);
        let reqs = vec![ServeRequest::new(ModelZoo::gptneo_small(), "tiny")];
        let report = engine.run(&reqs).unwrap();
        assert_eq!(report.failed(), 1);
        assert!(matches!(
            report.outcomes[0].error,
            Some(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn empty_fleet_falls_back_to_default_device() {
        let engine = ServeEngine::new(Vec::new(), FlashMemConfig::memory_priority());
        assert_eq!(engine.fleet().len(), 1);
        let report = engine.run(&[]).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.makespan_ms(), 0.0);
    }
}
