//! The unit of admission: one tenant's inference request.
//!
//! A [`ServeRequest`] is everything the scheduler knows about a piece of
//! work before compiling it: which model to run, who is asking (the tenant,
//! which drives memory caps, affinity sharding and per-tenant SLOs), how
//! urgent it is (the priority, which drives admission order and preemption),
//! when it arrives, and — optionally — the latency budget it must meet for
//! its service-level objective to count as attained.
//!
//! # Request disposition
//!
//! Every submitted request ends in **exactly one** terminal disposition,
//! and the three cause taxonomies partition the non-completed ones —
//! nothing is ever silently lost:
//!
//! | Disposition | Marker on [`RequestOutcome`](crate::RequestOutcome) | Cause type | Counted in |
//! |---|---|---|---|
//! | **Completed** | `rejected: None`, `error: None` | — | `ServeReport::completed()` |
//! | **Rejected** (shed by overload control, never accepted) | `rejected: Some(_)`, `error: None` | [`RejectCause`]: deadline-unmeetable, queue-full | `ServeReport::rejected()` / [`ShedBreakdown`](crate::ShedBreakdown) |
//! | **Failed** (accepted, then died) | `rejected: None`, `error: Some(_)`, `failure: Some(_)` | [`FailureCause`]: device-lost, kernel-fault, oom-spike, out-of-memory, execution | `ServeReport::failed()` |
//!
//! The partitions `accepted + rejected == submitted` and
//! `completed + failed == accepted` hold by construction and are
//! debug-asserted at every report commit point
//! ([`ServeReport::assert_disposition`](crate::ServeReport::assert_disposition)).
//!
//! Orthogonally, [`MissCause`](crate::MissCause) classifies why a
//! deadline-carrying **accepted** request missed its SLO (queueing,
//! execution, preemption, or failure) — a *failed* request with a deadline
//! is both `FailureCause`-typed and a `MissCause::Failed` SLO miss, while
//! a *rejected* one is excluded from SLO accounting entirely (it was never
//! accepted into the pipeline).

use flashmem_gpu_sim::{FaultKind, SimError};
use flashmem_graph::ModelSpec;

/// Why overload control shed a request instead of queueing it forever.
///
/// Every rejected request carries exactly one cause in its
/// [`RequestOutcome`](crate::RequestOutcome); nothing is ever silently
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectCause {
    /// Admission control proved the deadline unmeetable before queueing:
    /// even the uncontended predicted service time on the *best* device of
    /// the fleet exceeds the request's latency budget, so its laxity is
    /// negative on every shard it could possibly run on.
    DeadlineUnmeetable,
    /// The placed device's bounded queue was full at the request's arrival
    /// instant, so it was shed instead of growing the queue without bound.
    QueueFull,
}

impl RejectCause {
    /// Short stable label used in trace events and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            RejectCause::DeadlineUnmeetable => "deadline-unmeetable",
            RejectCause::QueueFull => "queue-full",
        }
    }
}

impl std::fmt::Display for RejectCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why an **accepted** request failed instead of completing — the typed
/// counterpart of [`RejectCause`] for work that died *after* admission (see
/// the request-disposition table in the [module docs](self)).
///
/// Every failed outcome carries exactly one cause, derived from its
/// [`SimError`] by [`FailureCause::from_error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// The device serving the request was lost (injected
    /// [`FaultKind::DeviceLoss`]) and no failover target survived — or
    /// failover was disabled.
    DeviceLost,
    /// An injected transient kernel fault killed the request's final
    /// attempt (its retry budget, possibly zero, was exhausted).
    KernelFault,
    /// An injected spurious OOM spike killed the request's final attempt.
    OomSpike,
    /// A *real* capacity failure: the model's working set genuinely did not
    /// fit (pool exhaustion, a tenant cap smaller than the model, an
    /// unrecoverable resume).
    OutOfMemory,
    /// Any other execution error (invalid stream, bad parameter, ...).
    Execution,
}

impl FailureCause {
    /// Short stable label used in trace events and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            FailureCause::DeviceLost => "device-lost",
            FailureCause::KernelFault => "kernel-fault",
            FailureCause::OomSpike => "oom-spike",
            FailureCause::OutOfMemory => "out-of-memory",
            FailureCause::Execution => "execution",
        }
    }

    /// Classify the terminal error of a failed request.
    pub fn from_error(error: &SimError) -> Self {
        match error {
            SimError::Fault { kind, .. } => match kind {
                FaultKind::DeviceLoss => FailureCause::DeviceLost,
                FaultKind::TransientKernel => FailureCause::KernelFault,
                FaultKind::OomSpike => FailureCause::OomSpike,
            },
            SimError::OutOfMemory { .. } => FailureCause::OutOfMemory,
            _ => FailureCause::Execution,
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Token counts of a generative request served through the decode path:
/// how long the prompt is (the prefill pass) and how many tokens to
/// generate (one per decode step after the prefill's first token).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeParams {
    /// Prompt tokens processed by the prefill pass (clamped to at least 1).
    pub prompt_tokens: u32,
    /// Tokens to generate (clamped to at least 1 — the prefill pass itself
    /// emits the first token).
    pub output_tokens: u32,
}

impl DecodeParams {
    /// Total context tokens this request will hold at its peak:
    /// the prompt plus every generated token except the last (which is
    /// emitted but never fed back).
    pub fn max_context_tokens(self) -> u64 {
        self.prompt_tokens as u64 + self.output_tokens as u64 - 1
    }
}

/// One inference request submitted to a [`ServeEngine`](crate::ServeEngine).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The model to run.
    pub model: ModelSpec,
    /// Tenant identity (per-tenant memory caps, affinity sharding key and
    /// per-tenant SLO lookup).
    pub tenant: String,
    /// Scheduling priority — higher values are more urgent. Under a
    /// preemptive policy a higher-priority arrival can suspend a running
    /// lower-priority inference.
    pub priority: u8,
    /// Simulated arrival time in milliseconds. A request can never execute
    /// (or occupy queue time) before it arrives.
    pub arrival_ms: f64,
    /// Optional SLO deadline as a *relative* latency budget in milliseconds:
    /// the request meets its SLO iff it completes within `deadline_ms` of
    /// `arrival_ms`. When `None`, the engine falls back to the tenant's
    /// default deadline (see
    /// [`ServeEngine::with_tenant_slo`](crate::ServeEngine::with_tenant_slo)),
    /// and if neither is set the request is excluded from SLO accounting.
    pub deadline_ms: Option<f64>,
    /// Prompt/output token counts for generative requests served by the
    /// continuous-batching decode engine
    /// ([`DecodeEngine`](crate::DecodeEngine)). `None` for one-shot
    /// requests; the model must carry a
    /// [`DecodeSpec`](flashmem_graph::models::DecodeSpec) when this is set.
    pub decode: Option<DecodeParams>,
}

impl ServeRequest {
    /// A priority-0 request from `tenant` arriving at time zero with no
    /// deadline.
    pub fn new(model: ModelSpec, tenant: impl Into<String>) -> Self {
        ServeRequest {
            model,
            tenant: tenant.into(),
            priority: 0,
            arrival_ms: 0.0,
            deadline_ms: None,
            decode: None,
        }
    }

    /// Mark this as a generative request with the given prompt/output token
    /// counts (builder style; both clamped to at least 1).
    pub fn with_decode_tokens(mut self, prompt_tokens: u32, output_tokens: u32) -> Self {
        self.decode = Some(DecodeParams {
            prompt_tokens: prompt_tokens.max(1),
            output_tokens: output_tokens.max(1),
        });
        self
    }

    /// Set the priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Set the arrival time (builder style, clamped to non-negative).
    pub fn with_arrival_ms(mut self, arrival_ms: f64) -> Self {
        self.arrival_ms = arrival_ms.max(0.0);
        self
    }

    /// Set the relative SLO deadline (builder style, clamped to
    /// non-negative).
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms.max(0.0));
        self
    }

    /// The request's own absolute deadline on the simulated clock
    /// (`arrival + deadline`), if it carries one. This only covers the
    /// request-level budget: tenant-default SLOs
    /// ([`ServeEngine::with_tenant_slo`](crate::ServeEngine::with_tenant_slo))
    /// are folded in by the engine, which feeds the resulting absolute
    /// instant to the deadline-aware policies.
    pub fn absolute_deadline_ms(&self) -> Option<f64> {
        self.deadline_ms.map(|d| self.arrival_ms + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn builder_defaults_and_clamps() {
        let r = ServeRequest::new(ModelZoo::vit(), "app-a");
        assert_eq!(r.priority, 0);
        assert_eq!(r.arrival_ms, 0.0);
        assert_eq!(r.deadline_ms, None);
        let r = r.with_priority(3).with_arrival_ms(-5.0);
        assert_eq!(r.priority, 3);
        assert_eq!(r.arrival_ms, 0.0);
    }

    #[test]
    fn deadline_is_clamped_non_negative() {
        let r = ServeRequest::new(ModelZoo::vit(), "a").with_deadline_ms(-1.0);
        assert_eq!(r.deadline_ms, Some(0.0));
        let r = r.with_deadline_ms(500.0);
        assert_eq!(r.deadline_ms, Some(500.0));
    }

    #[test]
    fn decode_tokens_clamp_and_context_math() {
        let r = ServeRequest::new(ModelZoo::gptneo_small(), "a").with_decode_tokens(0, 0);
        let d = r.decode.unwrap();
        assert_eq!(d.prompt_tokens, 1);
        assert_eq!(d.output_tokens, 1);
        assert_eq!(d.max_context_tokens(), 1);
        let d = DecodeParams {
            prompt_tokens: 16,
            output_tokens: 8,
        };
        assert_eq!(d.max_context_tokens(), 23);
    }

    #[test]
    fn failure_causes_classify_errors() {
        assert_eq!(
            FailureCause::from_error(&SimError::Fault {
                kind: FaultKind::DeviceLoss,
                at_ms: 10.0,
            }),
            FailureCause::DeviceLost
        );
        assert_eq!(
            FailureCause::from_error(&SimError::Fault {
                kind: FaultKind::TransientKernel,
                at_ms: 10.0,
            }),
            FailureCause::KernelFault
        );
        assert_eq!(
            FailureCause::from_error(&SimError::Fault {
                kind: FaultKind::OomSpike,
                at_ms: 10.0,
            }),
            FailureCause::OomSpike
        );
        assert_eq!(
            FailureCause::from_error(&SimError::OutOfMemory {
                pool: "unified".into(),
                requested: 2,
                available: 1,
                capacity: 1,
            }),
            FailureCause::OutOfMemory
        );
        assert_eq!(
            FailureCause::from_error(&SimError::InvalidParameter {
                message: "x".into(),
            }),
            FailureCause::Execution
        );
        assert_eq!(FailureCause::DeviceLost.label(), "device-lost");
        assert_eq!(FailureCause::KernelFault.to_string(), "kernel-fault");
    }

    #[test]
    fn absolute_deadline_is_arrival_plus_budget() {
        let r = ServeRequest::new(ModelZoo::vit(), "a");
        assert_eq!(r.absolute_deadline_ms(), None);
        let r = r.with_arrival_ms(250.0).with_deadline_ms(500.0);
        assert_eq!(r.absolute_deadline_ms(), Some(750.0));
    }
}
