//! The unit of admission: one tenant's inference request.

use flashmem_graph::ModelSpec;

/// One inference request submitted to a [`ServeEngine`](crate::ServeEngine).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The model to run.
    pub model: ModelSpec,
    /// Tenant identity (per-tenant memory caps and affinity sharding key).
    pub tenant: String,
    /// Scheduling priority — higher values are more urgent.
    pub priority: u8,
    /// Simulated arrival time in milliseconds. A request can never execute
    /// (or occupy queue time) before it arrives.
    pub arrival_ms: f64,
}

impl ServeRequest {
    /// A priority-0 request from `tenant` arriving at time zero.
    pub fn new(model: ModelSpec, tenant: impl Into<String>) -> Self {
        ServeRequest {
            model,
            tenant: tenant.into(),
            priority: 0,
            arrival_ms: 0.0,
        }
    }

    /// Set the priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Set the arrival time (builder style, clamped to non-negative).
    pub fn with_arrival_ms(mut self, arrival_ms: f64) -> Self {
        self.arrival_ms = arrival_ms.max(0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn builder_defaults_and_clamps() {
        let r = ServeRequest::new(ModelZoo::vit(), "app-a");
        assert_eq!(r.priority, 0);
        assert_eq!(r.arrival_ms, 0.0);
        let r = r.with_priority(3).with_arrival_ms(-5.0);
        assert_eq!(r.priority, 3);
        assert_eq!(r.arrival_ms, 0.0);
    }
}
