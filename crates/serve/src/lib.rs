//! # flashmem-serve
//!
//! The multi-tenant serving layer over the FlashMem simulator: where
//! `flashmem-core` replays **one** inference synchronously, this crate models
//! the "heavy traffic" regime — many in-flight inferences from many tenants
//! time-sharing the load/compute command queues of a fleet of simulated
//! devices.
//!
//! The crate is tokio-free by design: simulated time is advanced by a
//! hand-rolled discrete event loop ([`server::ServeEngine`]) that steps each
//! in-flight inference's lowered [`CommandStream`](flashmem_gpu_sim::engine::CommandStream)
//! one command at a time through
//! [`StreamStepper`](flashmem_gpu_sim::engine::StreamStepper), always
//! advancing whichever request can start its next command earliest on the
//! shared [`QueueClocks`](flashmem_gpu_sim::engine::QueueClocks).
//!
//! Device timelines are independent after placement, so one
//! [`ServeEngine::run`] steps its whole fleet **in parallel** on the
//! process-wide work-stealing pool (`flashmem_core::pool`): placement is a
//! sequential prologue, per-device stepping fans out as pool jobs sharing
//! one plan cache, and the merged report is re-assembled in deterministic
//! order — byte-identical to the serial loop, which
//! [`ServeEngine::run_on`] with a width-1 pool still provides for
//! bisection. This is what makes 100–1000-device fleet scenarios affordable
//! in one run (see the `fleet_scale` bench).
//!
//! * [`request`] — [`ServeRequest`], the unit of admission (model, tenant,
//!   priority, arrival time, optional SLO deadline).
//! * [`policy`] — the [`SchedulePolicy`] trait plus the FIFO, priority,
//!   device-affinity, preemptive-priority and deadline-aware (EDF,
//!   least-laxity, deadline-triggered preemption) policies.
//! * [`server`] — the [`ServeEngine`] event loop with per-tenant memory caps
//!   and SLO defaults, fronted by the shared
//!   [`ArtifactCache`](flashmem_core::ArtifactCache).
//! * [`metrics`] — per-request outcomes, per-device utilization, latency
//!   percentiles (overall and per priority), SLO attainment and preemption
//!   accounting.
//! * [`workload`] — deterministic seeded request generators (steady, Poisson,
//!   bursty, flash-crowd and diurnal arrivals) plus the adversarial
//!   [`OverloadScenario`] suite.
//! * [`multi_model`] — the FIFO [`MultiModelRunner`] of Figure 6, now a thin
//!   delegation to the scheduler's exclusive (single-slot) mode; its traces
//!   reproduce the legacy `flashmem-core` implementation byte for byte.
//!
//! ## Preemption and SLOs
//!
//! A [`PreemptivePriorityPolicy`] may *interrupt* running work: when every
//! slot is busy and an arrived request strictly outranks the lowest-priority
//! in-flight inference, that inference is suspended at its next command
//! boundary — the simulator freezes its stepper into a
//! [`Suspension`](flashmem_gpu_sim::engine::Suspension) snapshot and evicts
//! its resident weights — and resumed once a slot frees, paying a
//! configurable [`PreemptionCost`] (texture re-residency) before issuing its
//! next command. Requests carry optional relative deadlines (their own, or a
//! per-tenant default via [`ServeEngine::with_tenant_slo`]); the report
//! tallies attainment in [`SloSummary`] and breaks latency percentiles down
//! per priority level in [`PriorityLatency`].
//!
//! ## Deadline-aware scheduling
//!
//! Beyond static priority, three policies order work by *urgency*:
//! [`EdfPolicy`] admits the earliest absolute deadline first;
//! [`LeastLaxityPolicy`] admits the smallest **laxity** first, where
//! `laxity = deadline − now − estimated_remaining_service` and the estimate
//! is the compiled plan's uncontended stream makespan
//! ([`server::predicted_service_ms`]); and [`DeadlinePreemptivePolicy`]
//! additionally suspends a running inference when an arrival's laxity would
//! go negative waiting for it while the victim stays slack. Every decision
//! receives a [`PolicyContext`] with the simulated clock, and the report
//! attributes each deadline miss to a [`metrics::MissCause`] (queueing,
//! execution, preemption or failure).
//!
//! ## Overload survival
//!
//! [`ServeEngine::with_overload_control`](server::ServeEngine::with_overload_control)
//! arms three opt-in defenses for fleets pushed past saturation, all decided
//! in the run's sequential prologue or per-device loop so reports stay
//! byte-identical at every pool width: **admission control** early-rejects
//! requests whose deadline is provably unmeetable (negative laxity even on
//! the best shard they may run on), **bounded queues** shed arrivals past a
//! per-device depth limit at their arrival instant, and the **steal phase**
//! re-places queued (never in-flight) requests from backed-up shards onto
//! devices that can start them strictly earlier. Shed requests are never
//! silently dropped: each outcome carries a typed [`RejectCause`] and the
//! report tallies them in [`ShedBreakdown`].
//! [`ServeEngine::with_fleet_tenant_cap`](server::ServeEngine::with_fleet_tenant_cap)
//! extends per-device tenant caps fleet-wide by confining a tenant to a
//! hashed shard set with per-shard sub-caps.
//!
//! ## Tracing
//!
//! [`ServeEngine::with_trace`](server::ServeEngine::with_trace) threads the
//! deterministic cross-layer event recorder (`flashmem_core::telemetry`)
//! through every device job: request lifecycles (queue wait → admit → run →
//! preempt/resume → complete or fail), per-command queue spans and cache
//! hit/miss instants. Each device fills a private ring buffer inside its
//! pool job and the buffers merge at the same ordered commit point as the
//! outcomes, so the exported Chrome trace ([`chrome_trace`]) is
//! byte-identical at every pool width. Recording is off by default and
//! costs one branch per event when disabled.
//!
//! ## Example
//!
//! ```rust
//! use flashmem_core::FlashMemConfig;
//! use flashmem_gpu_sim::DeviceSpec;
//! use flashmem_graph::ModelZoo;
//! use flashmem_serve::{ArrivalPattern, PriorityPolicy, ServeEngine, WorkloadSpec};
//!
//! let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::pixel_8()];
//! let engine = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
//!     .with_policy(Box::new(PriorityPolicy::with_max_in_flight(2)));
//! let workload = WorkloadSpec {
//!     pattern: ArrivalPattern::Steady { interval_ms: 200.0 },
//!     requests: 6,
//!     tenants: 3,
//!     priority_levels: 2,
//!     seed: 7,
//! };
//! let requests = workload.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);
//! let report = engine.run(&requests).unwrap();
//! assert_eq!(report.outcomes.len(), 6);
//! let latency = report.latency.expect("some requests completed");
//! assert!(latency.p99_ms >= latency.p50_ms);
//! ```
//!
//! ## Continuous batching
//!
//! Generative requests (a [`ServeRequest`] with
//! [`with_decode_tokens`](ServeRequest::with_decode_tokens)) are served by
//! the [`DecodeEngine`]: one full-graph **prefill** pass per request, then a
//! step loop in which every in-flight request generates one token per
//! **decode step** while its KV cache grows in the device's memory tracker.
//! Requests join and leave the batch only at step boundaries under a
//! [`BatchConfig`] token budget, with a waiting/served join heuristic so
//! prefills don't starve in-flight decodes. The report gains token-level
//! TTFT and ITL percentiles next to the existing SLO metrics.
//!
//! ## Chaos & recovery
//!
//! A seeded [`FaultPlan`] injects device loss, transient kernel faults and
//! spurious OOM spikes into a run; firing is keyed by
//! `(device, seq, command, attempt)` so the same faults hit at every pool
//! width and scheduling order. Unprotected, each fault becomes a typed
//! failure ([`FailureCause`]) on the request's outcome. Arming
//! [`ServeEngine::with_recovery_control`](server::ServeEngine::with_recovery_control)
//! (or the decode-side equivalent) turns the run into rounds with a
//! **sequential recovery planner** between them: per-request retries under a
//! budget with simulated-time backoff, failover of in-flight work onto the
//! least-loaded survivor (resuming a
//! [`Suspension`](flashmem_gpu_sim::engine::Suspension) on a same-spec
//! sibling, re-running from scratch elsewhere; decode requests re-prefill
//! from their token position), and a per-device circuit breaker that
//! quarantines repeat offenders and reinstates them via probe requests.
//! Every decision is planned on the caller thread in submission order, so
//! protected reports stay byte-identical at any pool width; the tallies
//! land in [`ServeReport::recovery`] and the trace gains
//! `Fault`/`Retry`/`Failover`/`Quarantine`/`Probe` events. The four
//! [`ChaosScenario`]s drive the `chaos` bench, which sweeps each scenario
//! unprotected vs protected.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decode;
pub mod metrics;
pub mod multi_model;
pub mod policy;
pub mod request;
pub mod server;
pub mod workload;

pub use decode::{BatchConfig, DecodeEngine};
pub use flashmem_core::telemetry::{
    chrome_trace, FleetTrace, PhaseBreakdown, TraceConfig, TraceEvent, TraceKind, TraceLane,
};
pub use flashmem_gpu_sim::engine::PreemptionCost;
pub use flashmem_gpu_sim::{FaultKind, FaultPlan};
pub use metrics::{
    DecodeOutcome, DeviceReport, FailureBreakdown, LatencySummary, MissCause, PriorityLatency,
    RecoveryTallies, RequestOutcome, ServeReport, ShedBreakdown, SloSummary, TokenMetrics,
};
pub use multi_model::{InvocationResult, MultiModelReport, MultiModelRunner};
pub use policy::{
    AffinityPolicy, DeadlinePreemptivePolicy, EdfPolicy, FifoPolicy, InFlightEntry,
    LeastLaxityPolicy, OverloadControl, PendingEntry, PolicyContext, PreemptivePriorityPolicy,
    PriorityPolicy, RecoveryControl, SchedulePolicy,
};
pub use request::{DecodeParams, FailureCause, RejectCause, ServeRequest};
pub use server::ServeEngine;
pub use workload::{
    ArrivalPattern, ChaosScenario, DecodeWorkloadSpec, OverloadScenario, WorkloadSpec,
};
