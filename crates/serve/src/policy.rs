//! Pluggable scheduling policies.
//!
//! A policy decides four things: which device of the fleet a request is
//! placed on, which of the arrived-but-unadmitted requests is admitted next
//! when a slot frees up, how many inferences may be in flight on one
//! device at once (1 = exclusive, the FIFO baseline; >1 = the event loop
//! interleaves their command streams on the device's dual queues), and
//! whether a waiting higher-priority request may *preempt* a running
//! lower-priority one (and at what resume cost).

use flashmem_core::cache::Fnv1a;
use flashmem_gpu_sim::engine::PreemptionCost;

use crate::request::ServeRequest;

/// The scheduling-relevant view of one pending request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingEntry {
    /// Submission sequence number (global, stable tie-breaker).
    pub seq: usize,
    /// Request priority (higher = more urgent).
    pub priority: u8,
    /// Arrival time in milliseconds.
    pub arrival_ms: f64,
}

/// A scheduling policy for the [`ServeEngine`](crate::ServeEngine).
pub trait SchedulePolicy: Send + Sync {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Maximum number of in-flight inferences per device. The event loop
    /// clamps this to at least 1.
    fn max_in_flight(&self) -> usize {
        1
    }

    /// Device index (into a fleet of `fleet_len` devices) for a request.
    fn place(&self, request: &ServeRequest, seq: usize, fleet_len: usize) -> usize;

    /// Index into `candidates` (non-empty, all arrived) of the request to
    /// admit next.
    fn pick(&self, candidates: &[PendingEntry]) -> usize;

    /// When `Some`, the policy is *preemptive*: if every slot is busy and a
    /// waiting request strictly outranks the lowest-priority in-flight
    /// inference, the event loop suspends that inference at its next command
    /// boundary (evicting its resident memory) and charges the returned
    /// [`PreemptionCost`] when it later resumes. `None` (the default) never
    /// interrupts running work.
    fn preemption(&self) -> Option<PreemptionCost> {
        None
    }
}

/// Index of the candidate minimising (arrival, seq) — plain FIFO order.
fn pick_fifo(candidates: &[PendingEntry]) -> usize {
    let mut best = 0;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let b = &candidates[best];
        if (c.arrival_ms, c.seq) < (b.arrival_ms, b.seq) {
            best = i;
        }
    }
    best
}

/// Index of the highest-priority candidate; ties go to the earlier
/// (arrival, seq), so equal-priority admission stays FIFO.
fn pick_priority(candidates: &[PendingEntry]) -> usize {
    let mut best = 0;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let b = &candidates[best];
        let better = c.priority > b.priority
            || (c.priority == b.priority && (c.arrival_ms, c.seq) < (b.arrival_ms, b.seq));
        if better {
            best = i;
        }
    }
    best
}

/// First-in-first-out, one inference at a time per device, requests placed
/// round-robin across the fleet. On a single device this reproduces the
/// legacy `MultiModelRunner` exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry]) -> usize {
        pick_fifo(candidates)
    }
}

/// Strict priority admission: among arrived requests the highest priority is
/// admitted first; ties fall back to FIFO order, so a high-priority request
/// can never be overtaken by a lower-priority one that was pending at the
/// same time (no priority inversion).
#[derive(Debug, Clone, Copy)]
pub struct PriorityPolicy {
    max_in_flight: usize,
}

impl PriorityPolicy {
    /// Exclusive (one in-flight inference per device) priority scheduling.
    pub fn new() -> Self {
        PriorityPolicy { max_in_flight: 1 }
    }

    /// Priority scheduling with up to `slots` concurrent inferences per
    /// device sharing the dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        PriorityPolicy {
            max_in_flight: slots.max(1),
        }
    }
}

impl Default for PriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry]) -> usize {
        pick_priority(candidates)
    }
}

/// Priority scheduling that may *interrupt* running work: when every slot is
/// busy and an arrived request strictly outranks the lowest-priority
/// in-flight inference, that inference is suspended at its next command
/// boundary (its resident weights evicted) and resumed once a slot frees,
/// paying the configured [`PreemptionCost`] for re-residency. This is what
/// lets a latency-critical request meet its SLO even while a long
/// low-priority inference monopolizes the device.
#[derive(Debug, Clone, Copy)]
pub struct PreemptivePriorityPolicy {
    max_in_flight: usize,
    cost: PreemptionCost,
}

impl PreemptivePriorityPolicy {
    /// Exclusive (one in-flight inference per device) preemptive scheduling
    /// with full re-residency cost charged on resume.
    pub fn new() -> Self {
        PreemptivePriorityPolicy {
            max_in_flight: 1,
            cost: PreemptionCost::reload(),
        }
    }

    /// Preemptive scheduling with up to `slots` concurrent inferences per
    /// device sharing the dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        PreemptivePriorityPolicy {
            max_in_flight: slots.max(1),
            ..Self::new()
        }
    }

    /// Override the cost charged when a preempted inference resumes
    /// (builder style).
    pub fn with_cost(mut self, cost: PreemptionCost) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for PreemptivePriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for PreemptivePriorityPolicy {
    fn name(&self) -> &'static str {
        "preemptive"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry]) -> usize {
        pick_priority(candidates)
    }

    fn preemption(&self) -> Option<PreemptionCost> {
        Some(self.cost)
    }
}

/// Device-affinity sharding: every request of one tenant lands on the same
/// device (stable hash of the tenant name), so a tenant's weights never
/// bounce between devices and its plan-cache entries stay hot on one shard.
/// Within a shard, admission is FIFO with a configurable concurrency.
#[derive(Debug, Clone, Copy)]
pub struct AffinityPolicy {
    max_in_flight: usize,
}

impl AffinityPolicy {
    /// Affinity sharding with two in-flight inferences per device — the
    /// dual-queue sweet spot (one inference's loads overlap another's
    /// kernels).
    pub fn new() -> Self {
        AffinityPolicy { max_in_flight: 2 }
    }

    /// Affinity sharding with up to `slots` concurrent inferences per device.
    pub fn with_max_in_flight(slots: usize) -> Self {
        AffinityPolicy {
            max_in_flight: slots.max(1),
        }
    }
}

impl Default for AffinityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for AffinityPolicy {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, request: &ServeRequest, _seq: usize, fleet_len: usize) -> usize {
        let hash = Fnv1a::new().write_str(&request.tenant).finish();
        (hash % fleet_len.max(1) as u64) as usize
    }

    fn pick(&self, candidates: &[PendingEntry]) -> usize {
        pick_fifo(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn entry(seq: usize, priority: u8, arrival_ms: f64) -> PendingEntry {
        PendingEntry {
            seq,
            priority,
            arrival_ms,
        }
    }

    #[test]
    fn fifo_picks_earliest_arrival_then_sequence() {
        let c = [entry(2, 9, 5.0), entry(0, 0, 5.0), entry(1, 0, 1.0)];
        assert_eq!(FifoPolicy.pick(&c), 2);
        let tie = [entry(3, 0, 0.0), entry(1, 0, 0.0)];
        assert_eq!(FifoPolicy.pick(&tie), 1);
    }

    #[test]
    fn priority_beats_arrival_order() {
        let p = PriorityPolicy::new();
        let c = [entry(0, 1, 0.0), entry(1, 5, 10.0), entry(2, 5, 2.0)];
        // Highest priority wins; among equal priorities the earlier arrival.
        assert_eq!(p.pick(&c), 2);
        assert_eq!(p.max_in_flight(), 1);
        assert_eq!(PriorityPolicy::with_max_in_flight(0).max_in_flight(), 1);
    }

    #[test]
    fn preemptive_policy_exposes_its_cost_and_picks_like_priority() {
        let p = PreemptivePriorityPolicy::new();
        assert_eq!(p.max_in_flight(), 1);
        assert!(p.preemption().expect("preemptive").reload_evicted);
        let free = PreemptivePriorityPolicy::with_max_in_flight(2)
            .with_cost(PreemptionCost::free().with_fixed_ms(5.0));
        assert_eq!(free.max_in_flight(), 2);
        let cost = free.preemption().expect("preemptive");
        assert!(!cost.reload_evicted);
        assert_eq!(cost.fixed_ms, 5.0);
        // Non-preemptive policies report None.
        assert!(FifoPolicy.preemption().is_none());
        assert!(PriorityPolicy::new().preemption().is_none());
        // Same admission order as the plain priority policy.
        let c = [entry(0, 1, 0.0), entry(1, 5, 10.0), entry(2, 5, 2.0)];
        assert_eq!(p.pick(&c), PriorityPolicy::new().pick(&c));
    }

    #[test]
    fn affinity_is_stable_per_tenant() {
        let policy = AffinityPolicy::new();
        let a = ServeRequest::new(ModelZoo::vit(), "tenant-a");
        let b = ServeRequest::new(ModelZoo::vit(), "tenant-b");
        let da = policy.place(&a, 0, 4);
        for seq in 1..10 {
            assert_eq!(policy.place(&a, seq, 4), da);
        }
        // Different tenants may differ (and do for these names on 4 shards).
        assert_ne!(policy.place(&a, 0, 4), policy.place(&b, 0, 4));
    }

    #[test]
    fn round_robin_placement_covers_the_fleet() {
        let seen: std::collections::BTreeSet<usize> = (0..8)
            .map(|seq| FifoPolicy.place(&ServeRequest::new(ModelZoo::vit(), "t"), seq, 4))
            .collect();
        assert_eq!(seen.len(), 4);
    }
}
