//! Pluggable scheduling policies.
//!
//! A policy decides four things: which device of the fleet a request is
//! placed on, which of the arrived-but-unadmitted requests is admitted next
//! when a slot frees up, how many inferences may be in flight on one
//! device at once (1 = exclusive, the FIFO baseline; >1 = the event loop
//! interleaves their command streams on the device's dual queues), and
//! whether a waiting request may *preempt* a running one (and at what
//! resume cost).
//!
//! ## Urgency, deadlines and laxity
//!
//! Every scheduling decision receives a [`PolicyContext`] carrying the
//! current simulated time, and every candidate ([`PendingEntry`]) and
//! running inference ([`InFlightEntry`]) carries its absolute deadline and
//! an estimate of its remaining service time. From those three quantities a
//! policy can compute **laxity** — the scheduling slack of a request:
//!
//! ```text
//! laxity = deadline − now − estimated_remaining_service_time
//! ```
//!
//! A request with positive laxity can afford to wait that long and still
//! meet its deadline; zero laxity must start *now*; negative laxity is
//! predicted to miss even with immediate service. [`EdfPolicy`] orders by
//! deadline alone, [`LeastLaxityPolicy`] by laxity, and
//! [`DeadlinePreemptivePolicy`] suspends running work when an arrival's
//! laxity would go negative waiting for it while the victim stays slack.

use flashmem_core::cache::Fnv1a;
use flashmem_gpu_sim::engine::PreemptionCost;

use crate::request::ServeRequest;

/// The time-varying state a policy decision is made against.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyContext {
    /// Current simulated time on the device timeline, in milliseconds.
    pub now_ms: f64,
}

impl PolicyContext {
    /// A context at simulated time `now_ms`.
    pub fn at(now_ms: f64) -> Self {
        PolicyContext { now_ms }
    }
}

/// The scheduling-relevant view of one pending request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingEntry {
    /// Submission sequence number (global, stable tie-breaker).
    pub seq: usize,
    /// Request priority (higher = more urgent).
    pub priority: u8,
    /// Arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Absolute SLO deadline in milliseconds (arrival plus the request's
    /// relative latency budget), when the request carries one.
    pub deadline_ms: Option<f64>,
    /// Predicted remaining service time in milliseconds — the uncontended
    /// makespan of the request's lowered command stream (scaled by the
    /// remaining command fraction for a previously suspended request). Zero
    /// when the active policy does not request estimates
    /// ([`SchedulePolicy::uses_estimates`]).
    pub estimated_remaining_ms: f64,
}

impl PendingEntry {
    /// Laxity at `now_ms`: `deadline − now − estimated_remaining`, or
    /// `None` for a deadline-less request (which never runs out of slack).
    pub fn laxity_ms(&self, now_ms: f64) -> Option<f64> {
        self.deadline_ms
            .map(|d| d - now_ms - self.estimated_remaining_ms)
    }
}

/// The scheduling-relevant view of one in-flight (running) inference — what
/// a preemptive policy ranks when choosing a victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlightEntry {
    /// Submission sequence number.
    pub seq: usize,
    /// Request priority (higher = more urgent).
    pub priority: u8,
    /// Admission order on the device (larger = admitted more recently).
    pub order: usize,
    /// Absolute SLO deadline in milliseconds, when the request carries one.
    pub deadline_ms: Option<f64>,
    /// Predicted remaining service time in milliseconds (the uncontended
    /// stream makespan scaled by the fraction of commands not yet issued).
    pub estimated_remaining_ms: f64,
}

impl InFlightEntry {
    /// Laxity at `now_ms`: `deadline − now − estimated_remaining`, or
    /// `None` for a deadline-less inference (infinitely slack).
    pub fn laxity_ms(&self, now_ms: f64) -> Option<f64> {
        self.deadline_ms
            .map(|d| d - now_ms - self.estimated_remaining_ms)
    }
}

/// Fleet-wide overload behavior, layered *on top of* whatever
/// [`SchedulePolicy`] is active. Everything here is opt-in and off by
/// default, so an engine without overload control is bit-identical to the
/// pre-overload engine.
///
/// Three independent knobs:
///
/// * **Admission control** early-rejects a request whose deadline is
///   provably unmeetable: even the *uncontended* predicted service time on
///   the fleet's best device exceeds its latency budget, i.e. its laxity is
///   negative on every shard before any queueing. Such work can only waste
///   queue space and device time — shedding it at arrival with a typed
///   [`RejectCause::DeadlineUnmeetable`](crate::RejectCause) is strictly
///   better than serving it late.
/// * **Bounded queues** cap the number of arrived-but-unadmitted requests
///   per device; an arrival past the bound is shed with
///   [`RejectCause::QueueFull`](crate::RejectCause) instead of growing the
///   queue (and every queued request's latency) without limit.
/// * **Stealing** re-places *queued* (never in-flight) requests from
///   backed-up shards onto devices that would start them strictly earlier.
///   Steal decisions are made sequentially in submission order at the
///   run's commit point, so the result is byte-identical at any pool width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadControl {
    /// Maximum arrived-but-unadmitted requests per device; `None` leaves
    /// queues unbounded (the legacy behavior).
    pub queue_bound: Option<usize>,
    /// When true, reject deadline-carrying requests whose laxity is
    /// provably negative on every device of the fleet.
    pub admission_control: bool,
    /// When true, re-place queued requests from backed-up shards onto
    /// devices that would start them strictly earlier.
    pub steal: bool,
}

impl OverloadControl {
    /// Everything off — the legacy unbounded-queue behavior.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Bound every device's admission queue to `bound` waiting requests
    /// (clamped to at least 1; builder style).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound.max(1));
        self
    }

    /// Enable fleet-wide deadline admission control (builder style).
    pub fn with_admission_control(mut self) -> Self {
        self.admission_control = true;
        self
    }

    /// Enable the queued-request steal phase (builder style).
    pub fn with_steal(mut self) -> Self {
        self.steal = true;
        self
    }

    /// True when any knob is on — the engine skips the whole overload
    /// pipeline otherwise.
    pub fn any_enabled(&self) -> bool {
        self.queue_bound.is_some() || self.admission_control || self.steal
    }

    /// True when the run prologue needs per-(model, device) service-time
    /// predictions: both admission control (the laxity bound) and the
    /// steal planner (completion estimates) consume them.
    pub fn uses_estimates(&self) -> bool {
        self.admission_control || self.steal
    }
}

/// Fleet-wide failure recovery, layered *on top of* whatever
/// [`SchedulePolicy`] is active — the companion of [`OverloadControl`] for
/// *faults* rather than load. Everything here is opt-in and off by default,
/// so an engine without recovery control is byte-identical to the
/// pre-recovery engine even when a fault plan is armed (faults then simply
/// become typed failures).
///
/// Three independent defenses:
///
/// * **Retry with backoff** re-enqueues a request killed by a *transient*
///   injected fault (kernel fault, OOM spike) on the same device, up to
///   [`retry_budget`](Self::retry_budget) times per request, each retry
///   delayed by `backoff_ms × attempts` of *simulated* time.
/// * **Failover** re-places work stranded by a device loss or quarantine
///   onto surviving devices. The recovery planner runs sequentially between
///   fan-out rounds — the fault analogue of the steal planner's commit
///   point — so re-placement is byte-identical at any pool width. Work
///   drained from a *quarantined* (still alive) device migrates as a
///   [`Suspension`](flashmem_gpu_sim::engine::Suspension) and resumes
///   mid-stream on a same-spec sibling when one survives; work on a *lost*
///   device restarts from scratch (its memory died with it), and decode
///   requests re-prefill from their token position.
/// * **Quarantine (circuit breaker)** tracks per-device health: a device
///   whose injected-fault count crosses
///   [`quarantine_threshold`](Self::quarantine_threshold) stops receiving
///   placements; after [`probe_after_ms`](Self::probe_after_ms) of
///   simulated time it may receive exactly one *probe* request — a clean
///   probe reinstates the device, a faulting one re-quarantines it. A lost
///   device is quarantined permanently and never probed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryControl {
    /// Injected-fault retries allowed per request; 0 disables retry.
    pub retry_budget: u32,
    /// Simulated-time backoff before a retry or failover becomes eligible:
    /// the n-th recovery of a request waits `backoff_ms × n`.
    pub backoff_ms: f64,
    /// When true, re-place work stranded by a device loss or quarantine
    /// onto surviving devices instead of failing it.
    pub failover: bool,
    /// Injected faults a device may fire within one fan-out round before it
    /// is quarantined; `None` never quarantines.
    pub quarantine_threshold: Option<u32>,
    /// Simulated quarantine time before a device becomes eligible for a
    /// probe placement.
    pub probe_after_ms: f64,
}

impl Default for RecoveryControl {
    fn default() -> Self {
        RecoveryControl {
            retry_budget: 0,
            backoff_ms: 0.0,
            failover: false,
            quarantine_threshold: None,
            probe_after_ms: 0.0,
        }
    }
}

impl RecoveryControl {
    /// Everything off — faults become typed failures, nothing is retried,
    /// re-placed or quarantined.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Allow up to `budget` same-device retries per request (builder
    /// style).
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Set the simulated-time backoff unit between recovery attempts
    /// (builder style, clamped to non-negative).
    pub fn with_backoff_ms(mut self, backoff_ms: f64) -> Self {
        self.backoff_ms = backoff_ms.max(0.0);
        self
    }

    /// Enable failover re-placement of stranded work (builder style).
    pub fn with_failover(mut self) -> Self {
        self.failover = true;
        self
    }

    /// Quarantine a device after `threshold` injected faults in one round
    /// (clamped to at least 1) and allow a probe after `probe_after_ms` of
    /// simulated time (builder style).
    pub fn with_quarantine(mut self, threshold: u32, probe_after_ms: f64) -> Self {
        self.quarantine_threshold = Some(threshold.max(1));
        self.probe_after_ms = probe_after_ms.max(0.0);
        self
    }

    /// True when any knob is on — the engine skips the whole recovery
    /// pipeline otherwise.
    pub fn any_enabled(&self) -> bool {
        self.retry_budget > 0 || self.failover || self.quarantine_threshold.is_some()
    }
}

/// A scheduling policy for the [`ServeEngine`](crate::ServeEngine).
pub trait SchedulePolicy: Send + Sync {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Maximum number of in-flight inferences per device. The event loop
    /// clamps this to at least 1.
    fn max_in_flight(&self) -> usize {
        1
    }

    /// True when the policy's decisions consume
    /// [`estimated_remaining_ms`](PendingEntry::estimated_remaining_ms).
    /// The engine only pays for service-time prediction (one uncontended
    /// replay of each distinct model's command stream per device) when a
    /// policy asks for it; otherwise every estimate is reported as zero.
    fn uses_estimates(&self) -> bool {
        false
    }

    /// Device index (into a fleet of `fleet_len` devices) for a request.
    fn place(&self, request: &ServeRequest, seq: usize, fleet_len: usize) -> usize;

    /// Index into `candidates` (non-empty, all arrived) of the request to
    /// admit next, decided at the simulated time in `ctx`.
    fn pick(&self, candidates: &[PendingEntry], ctx: &PolicyContext) -> usize;

    /// When `Some`, the policy is *preemptive*: if every slot is busy and a
    /// waiting request [`outranks`](Self::outranks) the
    /// [`victim`](Self::victim) among the in-flight inferences, the event
    /// loop suspends that inference at its next command boundary (evicting
    /// its resident memory) and charges the returned [`PreemptionCost`] when
    /// it later resumes. `None` (the default) never interrupts running work.
    fn preemption(&self) -> Option<PreemptionCost> {
        None
    }

    /// Index into `in_flight` (non-empty) of the inference a preemptive
    /// policy would suspend first. The default picks the lowest priority,
    /// breaking ties toward the most recently admitted so older work keeps
    /// its progress.
    fn victim(&self, in_flight: &[InFlightEntry], _ctx: &PolicyContext) -> usize {
        let mut best = 0;
        for (i, f) in in_flight.iter().enumerate().skip(1) {
            let b = &in_flight[best];
            if (f.priority, std::cmp::Reverse(f.order)) < (b.priority, std::cmp::Reverse(b.order)) {
                best = i;
            }
        }
        best
    }

    /// True when `candidate` justifies suspending `victim` right now. Only
    /// consulted under a preemptive policy ([`preemption`](Self::preemption)
    /// is `Some`). The default is strict priority order: a preemption fires
    /// only for a strictly higher-priority candidate.
    fn outranks(
        &self,
        candidate: &PendingEntry,
        victim: &InFlightEntry,
        _ctx: &PolicyContext,
    ) -> bool {
        candidate.priority > victim.priority
    }
}

/// Index of the candidate minimising (arrival, seq) — plain FIFO order.
fn pick_fifo(candidates: &[PendingEntry]) -> usize {
    let mut best = 0;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let b = &candidates[best];
        if (c.arrival_ms, c.seq) < (b.arrival_ms, b.seq) {
            best = i;
        }
    }
    best
}

/// Index of the highest-priority candidate; ties go to the earlier
/// (arrival, seq), so equal-priority admission stays FIFO.
fn pick_priority(candidates: &[PendingEntry]) -> usize {
    let mut best = 0;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let b = &candidates[best];
        let better = c.priority > b.priority
            || (c.priority == b.priority && (c.arrival_ms, c.seq) < (b.arrival_ms, b.seq));
        if better {
            best = i;
        }
    }
    best
}

/// Index of the deadline-carrying candidate with the earliest absolute
/// deadline (ties to earlier arrival/seq). When no candidate carries a
/// deadline, falls back to priority order — EDF with a priority floor.
fn pick_edf(candidates: &[PendingEntry]) -> usize {
    let mut best: Option<usize> = None;
    for (i, c) in candidates.iter().enumerate() {
        let Some(deadline) = c.deadline_ms else {
            continue;
        };
        match best {
            None => best = Some(i),
            Some(b) => {
                let bc = &candidates[b];
                let best_deadline = bc.deadline_ms.expect("best candidate carries a deadline");
                if (deadline, c.arrival_ms, c.seq) < (best_deadline, bc.arrival_ms, bc.seq) {
                    best = Some(i);
                }
            }
        }
    }
    best.unwrap_or_else(|| pick_priority(candidates))
}

/// Index of the deadline-carrying candidate with the least laxity at
/// `now_ms` (ties to earlier deadline, then arrival/seq). Falls back to
/// priority order when nothing carries a deadline.
fn pick_least_laxity(candidates: &[PendingEntry], now_ms: f64) -> usize {
    let mut best: Option<usize> = None;
    for (i, c) in candidates.iter().enumerate() {
        let Some(laxity) = c.laxity_ms(now_ms) else {
            continue;
        };
        match best {
            None => best = Some(i),
            Some(b) => {
                let bc = &candidates[b];
                let best_laxity = bc.laxity_ms(now_ms).expect("best candidate has laxity");
                let key = (
                    laxity,
                    c.deadline_ms.unwrap_or(f64::INFINITY),
                    c.arrival_ms,
                    c.seq,
                );
                let best_key = (
                    best_laxity,
                    bc.deadline_ms.unwrap_or(f64::INFINITY),
                    bc.arrival_ms,
                    bc.seq,
                );
                if key < best_key {
                    best = Some(i);
                }
            }
        }
    }
    best.unwrap_or_else(|| pick_priority(candidates))
}

/// First-in-first-out, one inference at a time per device, requests placed
/// round-robin across the fleet. On a single device this reproduces the
/// legacy `MultiModelRunner` exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        pick_fifo(candidates)
    }
}

/// Strict priority admission: among arrived requests the highest priority is
/// admitted first; ties fall back to FIFO order, so a high-priority request
/// can never be overtaken by a lower-priority one that was pending at the
/// same time (no priority inversion).
#[derive(Debug, Clone, Copy)]
pub struct PriorityPolicy {
    max_in_flight: usize,
}

impl PriorityPolicy {
    /// Exclusive (one in-flight inference per device) priority scheduling.
    pub fn new() -> Self {
        PriorityPolicy { max_in_flight: 1 }
    }

    /// Priority scheduling with up to `slots` concurrent inferences per
    /// device sharing the dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        PriorityPolicy {
            max_in_flight: slots.max(1),
        }
    }
}

impl Default for PriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        pick_priority(candidates)
    }
}

/// Priority scheduling that may *interrupt* running work: when every slot is
/// busy and an arrived request strictly outranks the lowest-priority
/// in-flight inference, that inference is suspended at its next command
/// boundary (its resident weights evicted) and resumed once a slot frees,
/// paying the configured [`PreemptionCost`] for re-residency. This is what
/// lets a latency-critical request meet its SLO even while a long
/// low-priority inference monopolizes the device.
#[derive(Debug, Clone, Copy)]
pub struct PreemptivePriorityPolicy {
    max_in_flight: usize,
    cost: PreemptionCost,
}

impl PreemptivePriorityPolicy {
    /// Exclusive (one in-flight inference per device) preemptive scheduling
    /// with full re-residency cost charged on resume.
    pub fn new() -> Self {
        PreemptivePriorityPolicy {
            max_in_flight: 1,
            cost: PreemptionCost::reload(),
        }
    }

    /// Preemptive scheduling with up to `slots` concurrent inferences per
    /// device sharing the dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        PreemptivePriorityPolicy {
            max_in_flight: slots.max(1),
            ..Self::new()
        }
    }

    /// Override the cost charged when a preempted inference resumes
    /// (builder style).
    pub fn with_cost(mut self, cost: PreemptionCost) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for PreemptivePriorityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for PreemptivePriorityPolicy {
    fn name(&self) -> &'static str {
        "preemptive"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        pick_priority(candidates)
    }

    fn preemption(&self) -> Option<PreemptionCost> {
        Some(self.cost)
    }
}

/// Device-affinity sharding: every request of one tenant lands on the same
/// device (stable hash of the tenant name), so a tenant's weights never
/// bounce between devices and its plan-cache entries stay hot on one shard.
/// Within a shard, admission is FIFO with a configurable concurrency.
#[derive(Debug, Clone, Copy)]
pub struct AffinityPolicy {
    max_in_flight: usize,
}

impl AffinityPolicy {
    /// Affinity sharding with two in-flight inferences per device — the
    /// dual-queue sweet spot (one inference's loads overlap another's
    /// kernels).
    pub fn new() -> Self {
        AffinityPolicy { max_in_flight: 2 }
    }

    /// Affinity sharding with up to `slots` concurrent inferences per device.
    pub fn with_max_in_flight(slots: usize) -> Self {
        AffinityPolicy {
            max_in_flight: slots.max(1),
        }
    }
}

impl Default for AffinityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for AffinityPolicy {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, request: &ServeRequest, _seq: usize, fleet_len: usize) -> usize {
        let hash = Fnv1a::new().write_str(&request.tenant).finish();
        (hash % fleet_len.max(1) as u64) as usize
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        pick_fifo(candidates)
    }
}

/// Earliest-deadline-first admission: among arrived requests the one whose
/// absolute deadline expires soonest is admitted next, regardless of static
/// priority. Deadline-less requests yield to every deadline-carrying one and
/// fall back to priority/arrival order among themselves. EDF is optimal for
/// meeting deadlines on a single exclusive resource when the workload is
/// feasible — the serving-side analogue of ordering memory traffic by what
/// the hierarchy actually demands instead of by static rank.
#[derive(Debug, Clone, Copy)]
pub struct EdfPolicy {
    max_in_flight: usize,
}

impl EdfPolicy {
    /// Exclusive (one in-flight inference per device) EDF scheduling.
    pub fn new() -> Self {
        EdfPolicy { max_in_flight: 1 }
    }

    /// EDF with up to `slots` concurrent inferences per device sharing the
    /// dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        EdfPolicy {
            max_in_flight: slots.max(1),
        }
    }
}

impl Default for EdfPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for EdfPolicy {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        pick_edf(candidates)
    }
}

/// Least-laxity-first admission: among arrived requests the one with the
/// smallest `deadline − now − estimated_remaining_service` is admitted next,
/// so a short request about to blow a tight budget overtakes a long request
/// whose loose deadline leaves it slack — even when both deadlines are equal.
/// Requires service-time estimates ([`SchedulePolicy::uses_estimates`]), which
/// the engine derives from each compiled plan's uncontended stream makespan.
/// Deadline-less requests fall back to priority/arrival order.
#[derive(Debug, Clone, Copy)]
pub struct LeastLaxityPolicy {
    max_in_flight: usize,
}

impl LeastLaxityPolicy {
    /// Exclusive (one in-flight inference per device) least-laxity
    /// scheduling.
    pub fn new() -> Self {
        LeastLaxityPolicy { max_in_flight: 1 }
    }

    /// Least-laxity scheduling with up to `slots` concurrent inferences per
    /// device sharing the dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        LeastLaxityPolicy {
            max_in_flight: slots.max(1),
        }
    }
}

impl Default for LeastLaxityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for LeastLaxityPolicy {
    fn name(&self) -> &'static str {
        "least_laxity"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn uses_estimates(&self) -> bool {
        true
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry], ctx: &PolicyContext) -> usize {
        pick_least_laxity(candidates, ctx.now_ms)
    }
}

/// Deadline-triggered preemption: least-laxity admission plus the ability to
/// suspend running work, gated on *urgency* instead of static priority. A
/// preemption fires only when both hold:
///
/// 1. the arrival's laxity is **negative-bound** — waiting out the victim's
///    remaining service would drive it negative
///    (`laxity < victim.estimated_remaining`), so the deadline is lost
///    unless the victim yields now; and
/// 2. the victim **stays slack** — after absorbing the arrival's service
///    time *and* the fixed part of the resume cost, its own laxity remains
///    positive (a deadline-less victim is infinitely slack), so the rescue
///    does not knowingly trade one miss for another. The check is an
///    estimate: byte-dependent re-residency penalties (disk reload, texture
///    re-pack) and re-admission queueing are not known at trigger time, so
///    a victim suspended with slim slack can still miss — such misses are
///    attributed to [`MissCause::Preemption`](crate::MissCause::Preemption)
///    in the report.
///
/// The victim is the in-flight inference with the *most* laxity. Because a
/// rescued request is by construction less slack than its victim, the freed
/// inference can never immediately preempt back — the trigger cannot
/// ping-pong between two requests at one instant.
#[derive(Debug, Clone, Copy)]
pub struct DeadlinePreemptivePolicy {
    max_in_flight: usize,
    cost: PreemptionCost,
}

impl DeadlinePreemptivePolicy {
    /// Exclusive (one in-flight inference per device) deadline-triggered
    /// preemptive scheduling with full re-residency cost charged on resume.
    pub fn new() -> Self {
        DeadlinePreemptivePolicy {
            max_in_flight: 1,
            cost: PreemptionCost::reload(),
        }
    }

    /// Deadline-triggered preemption with up to `slots` concurrent
    /// inferences per device sharing the dual queues.
    pub fn with_max_in_flight(slots: usize) -> Self {
        DeadlinePreemptivePolicy {
            max_in_flight: slots.max(1),
            ..Self::new()
        }
    }

    /// Override the cost charged when a preempted inference resumes
    /// (builder style).
    pub fn with_cost(mut self, cost: PreemptionCost) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for DeadlinePreemptivePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulePolicy for DeadlinePreemptivePolicy {
    fn name(&self) -> &'static str {
        "deadline_preemptive"
    }

    fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    fn uses_estimates(&self) -> bool {
        true
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, candidates: &[PendingEntry], ctx: &PolicyContext) -> usize {
        pick_least_laxity(candidates, ctx.now_ms)
    }

    fn preemption(&self) -> Option<PreemptionCost> {
        Some(self.cost)
    }

    fn victim(&self, in_flight: &[InFlightEntry], ctx: &PolicyContext) -> usize {
        // The slackest inference yields first; deadline-less work is
        // infinitely slack. Ties go to the most recently admitted.
        let mut best = 0;
        for (i, f) in in_flight.iter().enumerate().skip(1) {
            let b = &in_flight[best];
            let laxity = f.laxity_ms(ctx.now_ms).unwrap_or(f64::INFINITY);
            let best_laxity = b.laxity_ms(ctx.now_ms).unwrap_or(f64::INFINITY);
            let better = laxity > best_laxity || (laxity == best_laxity && f.order > b.order);
            if better {
                best = i;
            }
        }
        best
    }

    fn outranks(
        &self,
        candidate: &PendingEntry,
        victim: &InFlightEntry,
        ctx: &PolicyContext,
    ) -> bool {
        let Some(laxity) = candidate.laxity_ms(ctx.now_ms) else {
            // A deadline-less arrival can always wait.
            return false;
        };
        let negative_bound = laxity < victim.estimated_remaining_ms;
        let victim_stays_slack = victim
            .laxity_ms(ctx.now_ms)
            .is_none_or(|v| v - candidate.estimated_remaining_ms - self.cost.fixed_ms > 0.0);
        negative_bound && victim_stays_slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn entry(seq: usize, priority: u8, arrival_ms: f64) -> PendingEntry {
        PendingEntry {
            seq,
            priority,
            arrival_ms,
            deadline_ms: None,
            estimated_remaining_ms: 0.0,
        }
    }

    fn deadline_entry(seq: usize, deadline_ms: f64, estimated_ms: f64) -> PendingEntry {
        PendingEntry {
            seq,
            priority: 0,
            arrival_ms: 0.0,
            deadline_ms: Some(deadline_ms),
            estimated_remaining_ms: estimated_ms,
        }
    }

    fn running(seq: usize, priority: u8, order: usize) -> InFlightEntry {
        InFlightEntry {
            seq,
            priority,
            order,
            deadline_ms: None,
            estimated_remaining_ms: 0.0,
        }
    }

    const CTX: PolicyContext = PolicyContext { now_ms: 0.0 };

    #[test]
    fn overload_control_defaults_off_and_builders_compose() {
        let off = OverloadControl::disabled();
        assert!(!off.any_enabled());
        assert!(!off.uses_estimates());
        assert_eq!(off, OverloadControl::default());

        let bounded = OverloadControl::disabled().with_queue_bound(0);
        assert_eq!(bounded.queue_bound, Some(1)); // clamped
        assert!(bounded.any_enabled());
        assert!(!bounded.uses_estimates()); // a bound alone needs no estimates

        let full = OverloadControl::disabled()
            .with_queue_bound(4)
            .with_admission_control()
            .with_steal();
        assert!(full.any_enabled());
        assert!(full.uses_estimates());
        assert_eq!(full.queue_bound, Some(4));
    }

    #[test]
    fn fifo_picks_earliest_arrival_then_sequence() {
        let c = [entry(2, 9, 5.0), entry(0, 0, 5.0), entry(1, 0, 1.0)];
        assert_eq!(FifoPolicy.pick(&c, &CTX), 2);
        let tie = [entry(3, 0, 0.0), entry(1, 0, 0.0)];
        assert_eq!(FifoPolicy.pick(&tie, &CTX), 1);
    }

    #[test]
    fn priority_beats_arrival_order() {
        let p = PriorityPolicy::new();
        let c = [entry(0, 1, 0.0), entry(1, 5, 10.0), entry(2, 5, 2.0)];
        // Highest priority wins; among equal priorities the earlier arrival.
        assert_eq!(p.pick(&c, &CTX), 2);
        assert_eq!(p.max_in_flight(), 1);
        assert_eq!(PriorityPolicy::with_max_in_flight(0).max_in_flight(), 1);
    }

    #[test]
    fn preemptive_policy_exposes_its_cost_and_picks_like_priority() {
        let p = PreemptivePriorityPolicy::new();
        assert_eq!(p.max_in_flight(), 1);
        assert!(p.preemption().expect("preemptive").reload_evicted);
        let free = PreemptivePriorityPolicy::with_max_in_flight(2)
            .with_cost(PreemptionCost::free().with_fixed_ms(5.0));
        assert_eq!(free.max_in_flight(), 2);
        let cost = free.preemption().expect("preemptive");
        assert!(!cost.reload_evicted);
        assert_eq!(cost.fixed_ms, 5.0);
        // Non-preemptive policies report None.
        assert!(FifoPolicy.preemption().is_none());
        assert!(PriorityPolicy::new().preemption().is_none());
        // Same admission order as the plain priority policy.
        let c = [entry(0, 1, 0.0), entry(1, 5, 10.0), entry(2, 5, 2.0)];
        assert_eq!(p.pick(&c, &CTX), PriorityPolicy::new().pick(&c, &CTX));
    }

    #[test]
    fn default_victim_is_lowest_priority_most_recent() {
        let p = PreemptivePriorityPolicy::new();
        let flights = [running(0, 2, 0), running(1, 0, 1), running(2, 0, 2)];
        // Priority 0 twice: the more recently admitted (order 2) yields.
        assert_eq!(p.victim(&flights, &CTX), 2);
        // Default outranking is strict priority.
        assert!(p.outranks(&entry(9, 1, 0.0), &flights[2], &CTX));
        assert!(!p.outranks(&entry(9, 0, 0.0), &flights[2], &CTX));
    }

    #[test]
    fn affinity_is_stable_per_tenant() {
        let policy = AffinityPolicy::new();
        let a = ServeRequest::new(ModelZoo::vit(), "tenant-a");
        let b = ServeRequest::new(ModelZoo::vit(), "tenant-b");
        let da = policy.place(&a, 0, 4);
        for seq in 1..10 {
            assert_eq!(policy.place(&a, seq, 4), da);
        }
        // Different tenants may differ (and do for these names on 4 shards).
        assert_ne!(policy.place(&a, 0, 4), policy.place(&b, 0, 4));
    }

    #[test]
    fn round_robin_placement_covers_the_fleet() {
        let seen: std::collections::BTreeSet<usize> = (0..8)
            .map(|seq| FifoPolicy.place(&ServeRequest::new(ModelZoo::vit(), "t"), seq, 4))
            .collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn edf_orders_by_absolute_deadline_not_priority() {
        let p = EdfPolicy::new();
        let mut urgent = entry(0, 0, 10.0);
        urgent.deadline_ms = Some(100.0);
        let mut relaxed = entry(1, 9, 0.0);
        relaxed.deadline_ms = Some(500.0);
        // The low-priority request with the earlier deadline wins.
        assert_eq!(p.pick(&[relaxed, urgent], &CTX), 1);
        // Deadline-carrying requests beat deadline-less ones outright.
        let no_deadline = entry(2, 9, 0.0);
        assert_eq!(p.pick(&[no_deadline, relaxed], &CTX), 1);
        // Without any deadline, EDF degrades to priority order.
        let c = [entry(0, 1, 0.0), entry(1, 5, 10.0), entry(2, 5, 2.0)];
        assert_eq!(p.pick(&c, &CTX), PriorityPolicy::new().pick(&c, &CTX));
        assert!(p.preemption().is_none());
        assert!(!p.uses_estimates());
        assert_eq!(EdfPolicy::with_max_in_flight(3).max_in_flight(), 3);
    }

    #[test]
    fn least_laxity_accounts_for_remaining_service_time() {
        let p = LeastLaxityPolicy::new();
        assert!(p.uses_estimates());
        // Same deadline, different service time: the longer job has less
        // slack and must go first.
        let short = deadline_entry(0, 1_000.0, 100.0);
        let long = deadline_entry(1, 1_000.0, 900.0);
        assert_eq!(p.pick(&[short, long], &CTX), 1);
        // An earlier deadline can still lose to a later, longer one.
        let soon_but_short = deadline_entry(0, 300.0, 10.0); // laxity 290
        let later_but_long = deadline_entry(1, 800.0, 700.0); // laxity 100
        assert_eq!(p.pick(&[soon_but_short, later_but_long], &CTX), 1);
        // Laxity shrinks as time passes.
        let late = PolicyContext::at(250.0);
        assert_eq!(soon_but_short.laxity_ms(late.now_ms), Some(40.0));
        // Deadline-less candidates fall back to priority order.
        let c = [entry(0, 1, 0.0), entry(1, 5, 10.0)];
        assert_eq!(p.pick(&c, &CTX), 1);
    }

    #[test]
    fn deadline_preemption_triggers_on_negative_bound_laxity_only() {
        let p = DeadlinePreemptivePolicy::new();
        assert!(p.preemption().is_some());
        assert!(p.uses_estimates());
        let victim = InFlightEntry {
            seq: 0,
            priority: 9,
            order: 0,
            deadline_ms: None,
            estimated_remaining_ms: 400.0,
        };
        // Waiting 400 ms would blow a 300 ms-slack candidate: preempt.
        let urgent = deadline_entry(1, 500.0, 200.0); // laxity 300 < 400
        assert!(p.outranks(&urgent, &victim, &CTX));
        // A candidate slack enough to wait out the victim does not.
        let patient = deadline_entry(2, 1_000.0, 200.0); // laxity 800 > 400
        assert!(!p.outranks(&patient, &victim, &CTX));
        // Deadline-less arrivals never preempt, whatever their priority.
        assert!(!p.outranks(&entry(3, 9, 0.0), &victim, &CTX));
        // A victim that would itself miss after yielding is not preempted.
        let tight_victim = InFlightEntry {
            deadline_ms: Some(350.0),
            ..victim
        }; // victim laxity -50: not slack
        assert!(!p.outranks(&urgent, &tight_victim, &CTX));
    }

    #[test]
    fn deadline_preemption_victimises_the_slackest_flight() {
        let p = DeadlinePreemptivePolicy::new();
        let tight = InFlightEntry {
            seq: 0,
            priority: 0,
            order: 0,
            deadline_ms: Some(300.0),
            estimated_remaining_ms: 250.0,
        }; // laxity 50
        let slack = InFlightEntry {
            seq: 1,
            priority: 9,
            order: 1,
            deadline_ms: Some(2_000.0),
            estimated_remaining_ms: 100.0,
        }; // laxity 1900
        let endless = InFlightEntry {
            seq: 2,
            priority: 9,
            order: 2,
            deadline_ms: None,
            estimated_remaining_ms: 500.0,
        }; // infinitely slack
        assert_eq!(p.victim(&[tight, slack], &CTX), 1);
        assert_eq!(p.victim(&[tight, slack, endless], &CTX), 2);
        // Picks least-laxity like the non-preemptive variant.
        let a = deadline_entry(0, 1_000.0, 100.0);
        let b = deadline_entry(1, 1_000.0, 900.0);
        assert_eq!(
            p.pick(&[a, b], &CTX),
            LeastLaxityPolicy::new().pick(&[a, b], &CTX)
        );
    }
}
