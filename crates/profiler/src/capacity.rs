//! Per-layer load-capacity determination (Section 4.2).
//!
//! The load capacity `C_ℓ` of a layer is the number of extra weight bytes that
//! can be transformed from unified into texture memory *while layer ℓ
//! executes* without slowing it down past an acceptable threshold. FlashMem
//! derives capacities in two ways:
//!
//! * **Static thresholds** per operator class: the largest extra volume whose
//!   *analytic* latency increase stays within the class budget (0%
//!   hierarchical, 20% reusable, 300% elemental — the Figure 2 thresholds),
//!   found by bisection on the simulator cost model.
//! * **Model-predicted** capacities obtained by bisecting the latency
//!   predicted by the trained GBRT regressor — the profile-guided refinement.

use flashmem_gpu_sim::kernel::{KernelCostModel, KernelDesc};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionPlan, Graph};
use serde::{Deserialize, Serialize};

use crate::gbrt::{GbrtConfig, GbrtModel};
use crate::latency_model::{kernel_for_group, LoweringOptions};
use crate::sampling::{KernelSample, KernelSampler, SamplingConfig};

/// Load capacity of one schedulable kernel (fusion group).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadCapacity {
    /// Index of the kernel in the execution order (fusion-group index).
    pub kernel_index: usize,
    /// Extra bytes the kernel can absorb while staying under the threshold.
    pub capacity_bytes: u64,
    /// Baseline latency of the kernel with no extra load, in milliseconds.
    pub baseline_latency_ms: f64,
}

/// How capacities are derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityPolicy {
    /// Per-class latency-increase budgets evaluated on the analytic cost
    /// model (the paper's deployment defaults).
    StaticThresholds,
    /// Thresholds refined by the latency regressor: the capacity is the
    /// largest extra volume whose *predicted* relative slowdown stays below
    /// `max_penalty`.
    Predicted {
        /// Maximum tolerated relative latency increase (e.g. 0.2 = 20%).
        max_penalty: f64,
    },
}

/// The load-capacity profiler: computes `C_ℓ` for every kernel of a model.
#[derive(Debug, Clone)]
pub struct CapacityProfiler {
    device: DeviceSpec,
    options: LoweringOptions,
    policy: CapacityPolicy,
    model: Option<GbrtModel>,
}

impl CapacityProfiler {
    /// A profiler using the paper's static per-class thresholds.
    pub fn new(device: DeviceSpec) -> Self {
        CapacityProfiler {
            device,
            options: LoweringOptions::flashmem(),
            policy: CapacityPolicy::StaticThresholds,
            model: None,
        }
    }

    /// Override the kernel-lowering options.
    pub fn with_options(mut self, options: LoweringOptions) -> Self {
        self.options = options;
        self
    }

    /// Switch to predicted capacities, training the GBRT regressor on a fresh
    /// profiling sweep of the device (the offline stage of Figure 3/4).
    pub fn with_trained_model(mut self, max_penalty: f64) -> Self {
        let samples = KernelSampler::new(self.device.clone(), SamplingConfig::default()).collect();
        let features: Vec<Vec<f64>> = samples.iter().map(KernelSample::features).collect();
        let targets: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        self.model = Some(GbrtModel::fit(&features, &targets, &GbrtConfig::default()));
        self.policy = CapacityPolicy::Predicted { max_penalty };
        self
    }

    /// The active policy.
    pub fn policy(&self) -> CapacityPolicy {
        self.policy
    }

    /// The trained regressor, if any.
    pub fn model(&self) -> Option<&GbrtModel> {
        self.model.as_ref()
    }

    /// Compute the capacity of every fusion group of `plan` over `graph`.
    pub fn capacities(&self, graph: &Graph, plan: &FusionPlan) -> Vec<LoadCapacity> {
        let cost = KernelCostModel::new(self.device.clone());
        plan.groups()
            .iter()
            .enumerate()
            .map(|(idx, group)| {
                let kernel = kernel_for_group(graph, group, &self.options);
                let baseline = cost.latency_ms(&kernel);
                let capacity = match self.policy {
                    CapacityPolicy::StaticThresholds => {
                        self.static_capacity(graph, group, &kernel, &cost)
                    }
                    CapacityPolicy::Predicted { max_penalty } => {
                        self.predicted_capacity(&kernel, baseline, max_penalty)
                    }
                };
                LoadCapacity {
                    kernel_index: idx,
                    capacity_bytes: capacity,
                    baseline_latency_ms: baseline,
                }
            })
            .collect()
    }

    fn static_capacity(
        &self,
        graph: &Graph,
        group: &flashmem_graph::FusionGroup,
        kernel: &KernelDesc,
        cost: &KernelCostModel,
    ) -> u64 {
        // The class threshold is a *latency-increase budget* (Figure 2):
        // hierarchical kernels tolerate none, reusable kernels 20%, elemental
        // kernels 300% (their absolute latency is tiny). The capacity is the
        // largest extra volume whose modelled slowdown stays within budget.
        let threshold = group.dominant_category(graph).capacity_threshold();
        if threshold <= 0.0 {
            return 0;
        }
        cost.max_extra_load_bytes(kernel, threshold)
    }

    fn predicted_capacity(&self, kernel: &KernelDesc, baseline: f64, max_penalty: f64) -> u64 {
        let Some(model) = &self.model else {
            return 0;
        };
        if max_penalty <= 0.0 || baseline <= 0.0 {
            return 0;
        }
        // Bisect on the extra ratio in [0, 4] using the regressor's predicted
        // latency; the predicted baseline is used for the relative comparison
        // so regressor bias largely cancels.
        let predict = |ratio: f64| {
            let sample = KernelSample {
                category: kernel.category,
                bytes_in: kernel.bytes_in,
                bytes_out: kernel.bytes_out,
                flops: kernel.flops,
                gws: kernel.launch.global_items(),
                lws: kernel.launch.local_items(),
                extra_ratio: ratio,
                latency_ms: 0.0,
            };
            model.predict(&sample.features())
        };
        let predicted_base = predict(0.0).max(1e-6);
        let penalty = |ratio: f64| predict(ratio) / predicted_base - 1.0;
        if penalty(4.0) <= max_penalty {
            return kernel.total_bytes() * 4;
        }
        let mut lo = 0.0f64;
        let mut hi = 4.0f64;
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            if penalty(mid) <= max_penalty {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (kernel.total_bytes() as f64 * lo) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::{GraphBuilder, OpKind};

    fn transformer_slice() -> Graph {
        let mut b = GraphBuilder::new("slice");
        let x = b.input("x", &[128, 768]);
        let ln = b.norm("ln", OpKind::LayerNorm, x);
        let m = b.matmul("fc1", ln, 3072);
        let g = b.unary("gelu", OpKind::GeLU, m);
        let m2 = b.matmul("fc2", g, 768);
        b.softmax("softmax", m2);
        b.build()
    }

    #[test]
    fn static_capacities_follow_category_thresholds() {
        let graph = transformer_slice();
        let plan = FusionPlan::unfused(&graph);
        let profiler = CapacityProfiler::new(DeviceSpec::oneplus_12());
        let caps = profiler.capacities(&graph, &plan);
        assert_eq!(caps.len(), graph.len());
        // LayerNorm and Softmax get zero capacity.
        assert_eq!(caps[1].capacity_bytes, 0);
        assert_eq!(caps[5].capacity_bytes, 0);
        // MatMuls get 20% of their input bytes.
        assert!(caps[2].capacity_bytes > 0);
        // GeLU (elemental) gets 300%, so proportionally the largest ratio.
        let gelu_node = &graph.nodes()[3];
        assert!(caps[3].capacity_bytes as f64 >= 2.9 * gelu_node.output_bytes() as f64);
    }

    #[test]
    fn fused_plan_capacity_governed_by_dominant_category() {
        let graph = transformer_slice();
        let plan = FusionPlan::default_fusion(&graph);
        let profiler = CapacityProfiler::new(DeviceSpec::oneplus_12());
        let caps = profiler.capacities(&graph, &plan);
        assert_eq!(caps.len(), plan.len());
        // Total capacity of the fused plan is below the unfused plan's total:
        // fusion shrinks schedulable capacity (the Section 4.3 trade-off).
        let unfused_caps = profiler.capacities(&graph, &FusionPlan::unfused(&graph));
        let fused_total: u64 = caps.iter().map(|c| c.capacity_bytes).sum();
        let unfused_total: u64 = unfused_caps.iter().map(|c| c.capacity_bytes).sum();
        assert!(fused_total < unfused_total);
    }

    #[test]
    fn baseline_latencies_positive() {
        let graph = transformer_slice();
        let plan = FusionPlan::default_fusion(&graph);
        let caps = CapacityProfiler::new(DeviceSpec::oneplus_12()).capacities(&graph, &plan);
        for c in caps {
            assert!(c.baseline_latency_ms > 0.0);
        }
    }

    #[test]
    fn predicted_policy_zeroes_hierarchical_and_allows_elemental() {
        let graph = transformer_slice();
        let plan = FusionPlan::unfused(&graph);
        let profiler = CapacityProfiler::new(DeviceSpec::oneplus_12()).with_trained_model(0.20);
        assert!(profiler.model().is_some());
        let caps = profiler.capacities(&graph, &plan);
        // Hierarchical kernels should still end up with (near-)zero capacity,
        // and elemental kernels should get clearly more than reusable ones in
        // relative terms.
        let ln_cap = caps[1].capacity_bytes as f64 / graph.nodes()[1].output_bytes().max(1) as f64;
        let gelu_cap =
            caps[3].capacity_bytes as f64 / graph.nodes()[3].output_bytes().max(1) as f64;
        assert!(ln_cap < gelu_cap, "ln {ln_cap} vs gelu {gelu_cap}");
    }

    #[test]
    fn device_differences_show_up_in_latency_not_in_zero_pattern() {
        // Capacities are latency-budget based, so their magnitude is device
        // dependent — but the zero/non-zero structure (hierarchical kernels
        // get nothing) is identical, and baseline latencies must grow on the
        // weaker device.
        let graph = transformer_slice();
        let plan = FusionPlan::unfused(&graph);
        let fast = CapacityProfiler::new(DeviceSpec::oneplus_12()).capacities(&graph, &plan);
        let slow = CapacityProfiler::new(DeviceSpec::xiaomi_mi_6()).capacities(&graph, &plan);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.capacity_bytes == 0, s.capacity_bytes == 0);
            assert!(s.baseline_latency_ms >= f.baseline_latency_ms);
        }
    }
}
