//! Lowering graph nodes and fusion groups into simulator kernels, and the
//! analytic overlap-interference study behind Figure 2.
//!
//! This is the shared "kernel information" box of Figure 3: both the baseline
//! frameworks and FlashMem's executor need to turn a [`FusionGroup`] into a
//! [`KernelDesc`] whose latency the simulator can price, and the profiler
//! needs per-kernel latency-vs-extra-load curves to derive load capacities.

use flashmem_gpu_sim::cache::AccessPattern;
use flashmem_gpu_sim::kernel::{KernelCostModel, KernelDesc, LaunchDims};
use flashmem_gpu_sim::texture::WeightLayout;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionGroup, Graph, Node, OpCategory, OpKind};
use serde::{Deserialize, Serialize};

use crate::classify::kernel_category;

/// Options controlling how nodes are lowered to kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoweringOptions {
    /// Weight layout the framework uses when the SMs read weights.
    pub weight_layout: WeightLayout,
    /// Whether kernels use the branch-free pipelined template (Section 4.4).
    pub pipelined: bool,
    /// Warp-divergence penalty applied to naive interleaved kernels.
    pub divergence_penalty: f64,
    /// Execute in FP16 (true) or FP32.
    pub fp16: bool,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            weight_layout: WeightLayout::Texture2p5dOptimized,
            pipelined: false,
            divergence_penalty: 0.0,
            fp16: true,
        }
    }
}

impl LoweringOptions {
    /// Lowering used by FlashMem's rewritten kernels: optimized 2.5D layout,
    /// branch-free pipelined template.
    pub fn flashmem() -> Self {
        LoweringOptions {
            weight_layout: WeightLayout::Texture2p5dOptimized,
            pipelined: true,
            divergence_penalty: 0.0,
            fp16: true,
        }
    }

    /// Lowering used by a texture-based preloading framework (MNN-class).
    pub fn texture_framework() -> Self {
        LoweringOptions {
            weight_layout: WeightLayout::Texture2p5d,
            pipelined: false,
            divergence_penalty: 0.0,
            fp16: true,
        }
    }

    /// Lowering used by a unified-memory-only framework (ExecuTorch-class).
    pub fn linear_buffer_framework() -> Self {
        LoweringOptions {
            weight_layout: WeightLayout::LinearBuffer,
            pipelined: false,
            divergence_penalty: 0.05,
            fp16: true,
        }
    }
}

/// Estimate activation input bytes of a node: the outputs of its producers.
fn input_bytes(graph: &Graph, node: &Node) -> u64 {
    node.inputs
        .iter()
        .filter_map(|id| graph.node(*id))
        .map(|n| n.output_bytes())
        .sum()
}

/// Pick an access pattern for a node's weight reads.
fn access_pattern(node: &Node) -> AccessPattern {
    match node.kind {
        OpKind::Conv2d | OpKind::DepthwiseConv2d | OpKind::ConvTranspose2d => {
            AccessPattern::Tiled2d
        }
        OpKind::Gather | OpKind::Embedding => AccessPattern::Random,
        OpKind::Transpose => AccessPattern::Strided { stride_texels: 64 },
        _ => AccessPattern::RowStreaming,
    }
}

/// Pick launch dimensions from the node's output size and category.
fn launch_dims(node: &Node) -> LaunchDims {
    let elements = node.output.elements();
    match node.category() {
        OpCategory::Elemental => LaunchDims::new([elements.div_ceil(4).max(1), 1, 1], [64, 1, 1]),
        OpCategory::Reusable => {
            let (rows, cols) = node.output.as_matrix();
            LaunchDims::new(
                [cols.div_ceil(4).max(1), rows.div_ceil(4).max(1), 1],
                [8, 8, 1],
            )
        }
        OpCategory::Hierarchical => {
            let (rows, _) = node.output.as_matrix();
            LaunchDims::new([rows.max(1), 1, 1], [32, 1, 1])
        }
    }
}

/// Lower a single node into a kernel descriptor.
pub fn kernel_for_node(graph: &Graph, node: &Node, options: &LoweringOptions) -> KernelDesc {
    let bytes_in = input_bytes(graph, node) + node.weight_bytes();
    let bytes_out = node.output_bytes();
    KernelDesc::new(
        &format!("{}#{}", node.name, node.id.0),
        kernel_category(node.category()),
        node.flops() as f64,
        bytes_in.max(1),
        bytes_out,
    )
    .with_launch(launch_dims(node))
    .with_weight_layout(options.weight_layout)
    .with_access_pattern(access_pattern(node))
    .with_fp16(options.fp16)
    .pipelined(options.pipelined)
    .with_divergence_penalty(options.divergence_penalty)
}

/// Lower a fusion group into a single kernel descriptor: the fused kernel
/// reads the group's external inputs and all member weights, writes the last
/// member's output and performs the sum of member FLOPs. Its category is the
/// group's dominant category (the least load-tolerant member governs).
pub fn kernel_for_group(
    graph: &Graph,
    group: &FusionGroup,
    options: &LoweringOptions,
) -> KernelDesc {
    let members: Vec<&Node> = group
        .nodes
        .iter()
        .filter_map(|id| graph.node(*id))
        .collect();
    let last = members.last().expect("fusion groups are non-empty");

    // External activation inputs: inputs whose producer is outside the group.
    let mut activation_in = 0u64;
    for node in &members {
        for input in &node.inputs {
            if !group.nodes.contains(input) {
                if let Some(producer) = graph.node(*input) {
                    activation_in += producer.output_bytes();
                }
            }
        }
    }
    let weights: u64 = members.iter().map(|n| n.weight_bytes()).sum();
    let flops: u64 = members.iter().map(|n| n.flops()).sum();
    let bytes_out = last.output_bytes();

    // The anchor (highest-MAC member) determines launch geometry and access
    // pattern; the dominant category determines interference behaviour.
    let anchor = members
        .iter()
        .max_by_key(|n| n.macs)
        .copied()
        .unwrap_or(last);

    KernelDesc::new(
        &format!("fused_{}#{}", anchor.name, anchor.id.0),
        kernel_category(group.dominant_category(graph)),
        flops as f64,
        (activation_in + weights).max(1),
        bytes_out,
    )
    .with_launch(launch_dims(anchor))
    .with_weight_layout(options.weight_layout)
    .with_access_pattern(access_pattern(anchor))
    .with_fp16(options.fp16)
    .pipelined(options.pipelined)
    .with_divergence_penalty(options.divergence_penalty)
}

/// One point of a Figure 2-style interference curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapPoint {
    /// Extra data volume as a ratio of the kernel's own input volume.
    pub extra_ratio: f64,
    /// Absolute latency increase in milliseconds.
    pub latency_increase_ms: f64,
    /// Relative latency increase (fraction of the baseline latency).
    pub relative_increase: f64,
}

/// Sweep the latency increase of `kernel` as the concurrently streamed volume
/// grows from 0 to `max_ratio` × its own input, in `steps` steps — the
/// experiment of Figure 2.
pub fn overlap_sweep(
    device: &DeviceSpec,
    kernel: &KernelDesc,
    max_ratio: f64,
    steps: usize,
) -> Vec<OverlapPoint> {
    let cost = KernelCostModel::new(device.clone());
    let base = cost.latency_ms(kernel);
    let own = kernel.total_bytes() as f64;
    (0..=steps)
        .map(|i| {
            let ratio = max_ratio * i as f64 / steps.max(1) as f64;
            let extra = (own * ratio) as u64;
            let with = cost.latency_with_extra_load_ms(kernel, extra);
            OverlapPoint {
                extra_ratio: ratio,
                latency_increase_ms: (with - base).max(0.0),
                relative_increase: if base > 0.0 {
                    (with - base).max(0.0) / base
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::{GraphBuilder, ModelZoo};

    fn ffn() -> Graph {
        let mut b = GraphBuilder::new("ffn");
        let x = b.input("x", &[128, 768]);
        let m = b.matmul("fc1", x, 3072);
        let a = b.bias_add("bias", m);
        let g = b.unary("gelu", OpKind::GeLU, a);
        b.matmul("fc2", g, 768);
        b.build()
    }

    #[test]
    fn node_lowering_includes_weights_in_input_bytes() {
        let g = ffn();
        let node = &g.nodes()[1]; // fc1
        let k = kernel_for_node(&g, node, &LoweringOptions::default());
        assert!(k.bytes_in >= node.weight_bytes());
        assert_eq!(k.flops, node.flops() as f64);
    }

    #[test]
    fn group_lowering_aggregates_members() {
        let g = ffn();
        let plan = flashmem_graph::FusionPlan::default_fusion(&g);
        let group = plan
            .groups()
            .iter()
            .find(|gr| gr.len() >= 3)
            .expect("fused group");
        let k = kernel_for_group(&g, group, &LoweringOptions::flashmem());
        let member_flops: u64 = group
            .nodes
            .iter()
            .map(|id| g.node(*id).unwrap().flops())
            .sum();
        assert_eq!(k.flops, member_flops as f64);
        assert!(k.pipelined);
        let member_weights: u64 = group
            .nodes
            .iter()
            .map(|id| g.node(*id).unwrap().weight_bytes())
            .sum();
        assert!(k.bytes_in >= member_weights);
    }

    #[test]
    fn fused_kernel_is_faster_than_members_executed_separately() {
        let g = ffn();
        let device = DeviceSpec::oneplus_12();
        let cost = KernelCostModel::new(device.clone());
        let plan = flashmem_graph::FusionPlan::default_fusion(&g);
        let group = plan.groups().iter().find(|gr| gr.len() >= 3).unwrap();
        let opts = LoweringOptions::default();
        let fused = cost.latency_ms(&kernel_for_group(&g, group, &opts));
        let separate: f64 = group
            .nodes
            .iter()
            .map(|id| cost.latency_ms(&kernel_for_node(&g, g.node(*id).unwrap(), &opts)))
            .sum();
        assert!(fused < separate, "fused {fused} vs separate {separate}");
    }

    #[test]
    fn overlap_sweep_reproduces_figure_2_ordering() {
        // At the same relative extra volume, hierarchical ops suffer the most,
        // elemental the least, reusable in between — and matmul has the
        // largest absolute baseline so its absolute increase is sizeable.
        let g = ModelZoo::gptneo_small();
        let graph = g.graph();
        let device = DeviceSpec::oneplus_12();
        let opts = LoweringOptions::default();
        let pick = |kind: OpKind| {
            graph
                .nodes()
                .iter()
                .find(|n| n.kind == kind && n.macs > 0)
                .map(|n| kernel_for_node(graph, n, &opts))
                .expect("node of requested kind")
        };
        let matmul = pick(OpKind::MatMul);
        let softmax = pick(OpKind::Softmax);
        let gelu = pick(OpKind::GeLU);

        let rel_at_1 = |k: &KernelDesc| {
            overlap_sweep(&device, k, 1.0, 4)
                .last()
                .unwrap()
                .relative_increase
        };
        assert!(rel_at_1(&softmax) > rel_at_1(&matmul));
        assert!(rel_at_1(&matmul) > rel_at_1(&gelu));
    }

    #[test]
    fn overlap_sweep_is_monotone() {
        let g = ffn();
        let device = DeviceSpec::oneplus_12();
        let k = kernel_for_node(&g, &g.nodes()[1], &LoweringOptions::default());
        let sweep = overlap_sweep(&device, &k, 2.0, 8);
        assert_eq!(sweep.len(), 9);
        for pair in sweep.windows(2) {
            assert!(pair[1].latency_increase_ms >= pair[0].latency_increase_ms - 1e-9);
        }
        assert_eq!(sweep[0].extra_ratio, 0.0);
        assert!(sweep[0].latency_increase_ms.abs() < 1e-9);
    }

    #[test]
    fn lowering_presets_differ_in_the_expected_direction() {
        let g = ffn();
        let device = DeviceSpec::oneplus_12();
        let cost = KernelCostModel::new(device);
        let node = &g.nodes()[1];
        let flash = cost.latency_ms(&kernel_for_node(&g, node, &LoweringOptions::flashmem()));
        let texture = cost.latency_ms(&kernel_for_node(
            &g,
            node,
            &LoweringOptions::texture_framework(),
        ));
        let linear = cost.latency_ms(&kernel_for_node(
            &g,
            node,
            &LoweringOptions::linear_buffer_framework(),
        ));
        assert!(flash <= texture);
        assert!(texture < linear);
    }
}
