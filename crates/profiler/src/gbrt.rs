//! A small gradient-boosted regression-tree (GBRT) implementation.
//!
//! The paper trains an XGBoost regressor over profiled kernels (Figure 4) to
//! predict kernel latency under varying additional I/O load; the prediction
//! feeds the per-layer load capacities used by the LC-OPG solver. XGBoost is
//! not available offline, so this module implements the core algorithm —
//! least-squares gradient boosting over depth-limited regression trees — which
//! is functionally equivalent for this (low-dimensional, smooth) regression
//! task.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbrtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Learning rate (shrinkage) applied to each tree's contribution.
    pub learning_rate: f64,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for GbrtConfig {
    fn default() -> Self {
        GbrtConfig {
            n_trees: 80,
            max_depth: 4,
            learning_rate: 0.1,
            min_samples_split: 8,
        }
    }
}

/// One node of a regression tree (stored in a flat arena).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TreeNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A depth-limited least-squares regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

impl RegressionTree {
    /// Fit a tree to `(features, targets)` with the given depth limit.
    fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        max_depth: usize,
        min_samples_split: usize,
    ) -> Self {
        let mut nodes = Vec::new();
        Self::build(
            features,
            targets,
            indices,
            max_depth,
            min_samples_split,
            &mut nodes,
        );
        RegressionTree { nodes }
    }

    fn mean(targets: &[f64], indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
    }

    fn sse(targets: &[f64], indices: &[usize]) -> f64 {
        let m = Self::mean(targets, indices);
        indices.iter().map(|&i| (targets[i] - m).powi(2)).sum()
    }

    fn build(
        features: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        depth: usize,
        min_samples_split: usize,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let node_index = nodes.len();
        if depth == 0 || indices.len() < min_samples_split {
            nodes.push(TreeNode::Leaf {
                value: Self::mean(targets, indices),
            });
            return node_index;
        }

        // Find the best (feature, threshold) split by exhaustive search over
        // candidate thresholds (midpoints of sorted unique values).
        let n_features = features.first().map(|f| f.len()).unwrap_or(0);
        let parent_sse = Self::sse(targets, indices);
        let mut best: Option<(usize, f64, f64)> = None; // feature, threshold, gain
        #[allow(clippy::needless_range_loop)] // `feature` indexes a column across rows
        for feature in 0..n_features {
            let mut values: Vec<f64> = indices.iter().map(|&i| features[i][feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            for pair in values.windows(2) {
                let threshold = (pair[0] + pair[1]) / 2.0;
                let (left, right): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| features[i][feature] <= threshold);
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                let gain = parent_sse - Self::sse(targets, &left) - Self::sse(targets, &right);
                if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((feature, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            nodes.push(TreeNode::Leaf {
                value: Self::mean(targets, indices),
            });
            return node_index;
        };

        // Reserve the split node, then build children.
        nodes.push(TreeNode::Leaf { value: 0.0 });
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| features[i][feature] <= threshold);
        let left = Self::build(
            features,
            targets,
            &left_idx,
            depth - 1,
            min_samples_split,
            nodes,
        );
        let right = Self::build(
            features,
            targets,
            &right_idx,
            depth - 1,
            min_samples_split,
            nodes,
        );
        nodes[node_index] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_index
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// A gradient-boosted ensemble of regression trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbrtModel {
    base: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl GbrtModel {
    /// Fit the ensemble to `(features, targets)`.
    ///
    /// # Panics
    ///
    /// Panics if `features` and `targets` have different lengths. An empty
    /// training set produces a constant-zero model.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], config: &GbrtConfig) -> Self {
        assert_eq!(
            features.len(),
            targets.len(),
            "feature/target length mismatch"
        );
        if features.is_empty() {
            return GbrtModel {
                base: 0.0,
                trees: Vec::new(),
                learning_rate: config.learning_rate,
            };
        }
        let base = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut predictions = vec![base; targets.len()];
        let indices: Vec<usize> = (0..targets.len()).collect();
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Least-squares gradient boosting: fit each tree to the residuals.
            let residuals: Vec<f64> = targets
                .iter()
                .zip(&predictions)
                .map(|(t, p)| t - p)
                .collect();
            let tree = RegressionTree::fit(
                features,
                &residuals,
                &indices,
                config.max_depth,
                config.min_samples_split,
            );
            for (i, p) in predictions.iter_mut().enumerate() {
                *p += config.learning_rate * tree.predict(&features[i]);
            }
            trees.push(tree);
        }
        GbrtModel {
            base,
            trees,
            learning_rate: config.learning_rate,
        }
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.learning_rate * t.predict(features))
                .sum::<f64>()
    }

    /// Root-mean-square error over a labelled set.
    pub fn rmse(&self, features: &[Vec<f64>], targets: &[f64]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let sq: f64 = features
            .iter()
            .zip(targets)
            .map(|(f, t)| (self.predict(f) - t).powi(2))
            .sum();
        (sq / features.len() as f64).sqrt()
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3 x0 + 0.5 x1 with x0 in [0,10), x1 in [0,4)
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let x0 = (i % 50) as f64 / 5.0;
            let x1 = ((i * 7) % 40) as f64 / 10.0;
            features.push(vec![x0, x1]);
            targets.push(3.0 * x0 + 0.5 * x1);
        }
        (features, targets)
    }

    #[test]
    fn fits_a_linear_function_reasonably() {
        let (features, targets) = linear_dataset(300);
        let model = GbrtModel::fit(&features, &targets, &GbrtConfig::default());
        let rmse = model.rmse(&features, &targets);
        let spread = targets.iter().cloned().fold(f64::MIN, f64::max)
            - targets.iter().cloned().fold(f64::MAX, f64::min);
        assert!(rmse < 0.05 * spread, "rmse {rmse} vs spread {spread}");
    }

    #[test]
    fn fits_a_step_function_exactly_enough() {
        // Trees should nail piecewise-constant targets.
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..200).map(|i| if i < 100 { 1.0 } else { 5.0 }).collect();
        let model = GbrtModel::fit(&features, &targets, &GbrtConfig::default());
        assert!((model.predict(&[10.0]) - 1.0).abs() < 0.2);
        assert!((model.predict(&[150.0]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn monotone_in_a_monotone_feature() {
        let (features, targets) = linear_dataset(300);
        let model = GbrtModel::fit(&features, &targets, &GbrtConfig::default());
        assert!(model.predict(&[9.0, 1.0]) > model.predict(&[1.0, 1.0]));
    }

    #[test]
    fn empty_training_set_predicts_zero() {
        let model = GbrtModel::fit(&[], &[], &GbrtConfig::default());
        assert_eq!(model.predict(&[1.0, 2.0]), 0.0);
        assert_eq!(model.num_trees(), 0);
    }

    #[test]
    fn constant_targets_predict_the_constant() {
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets = vec![2.5; 50];
        let model = GbrtModel::fit(&features, &targets, &GbrtConfig::default());
        assert!((model.predict(&[25.0]) - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = GbrtModel::fit(&[vec![1.0]], &[1.0, 2.0], &GbrtConfig::default());
    }

    #[test]
    fn single_tree_predict_path() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit(&features, &targets, &idx, 3, 2);
        assert!(!tree.is_empty());
        assert!(tree.predict(&[0.0]) < tree.predict(&[19.0]));
        assert!(tree.len() >= 3);
    }
}
