//! Profiling-sample generation (the Figure 4 pipeline).
//!
//! The paper profiles kernels drawn from more than ten models, systematically
//! varying global/local work sizes, loop tiling and the amount of extra I/O
//! injected, and records the observed latency to train its XGBoost model. We
//! reproduce the pipeline against the simulator: kernels are sampled over the
//! same parameter ranges, priced by the cost model with a small measurement
//! noise term, and turned into feature vectors for the GBRT regressor.

use flashmem_gpu_sim::kernel::{KernelCategory, KernelCostModel, KernelDesc, LaunchDims};
use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_gpu_sim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// One profiled execution of a kernel with injected extra I/O.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSample {
    /// Operator category of the kernel (encoded in the features).
    pub category: KernelCategory,
    /// Kernel input bytes.
    pub bytes_in: u64,
    /// Kernel output bytes.
    pub bytes_out: u64,
    /// Arithmetic work in FLOPs.
    pub flops: f64,
    /// Global work size (flattened).
    pub gws: u64,
    /// Local work size (flattened).
    pub lws: u64,
    /// Extra streamed bytes relative to the kernel's own volume.
    pub extra_ratio: f64,
    /// Observed (simulated, noisy) latency in milliseconds.
    pub latency_ms: f64,
}

impl KernelSample {
    /// Encode the sample as the feature vector used by the regressor:
    /// `[category one-hot ×3, log2 bytes_in, log2 bytes_out, log2 flops,
    ///   log2 gws, log2 lws, compute intensity, extra_ratio]`.
    pub fn features(&self) -> Vec<f64> {
        let one_hot = match self.category {
            KernelCategory::Elemental => [1.0, 0.0, 0.0],
            KernelCategory::Reusable => [0.0, 1.0, 0.0],
            KernelCategory::Hierarchical => [0.0, 0.0, 1.0],
        };
        let log2 = |v: f64| if v <= 1.0 { 0.0 } else { v.log2() };
        let intensity = self.flops / (self.bytes_in + self.bytes_out).max(1) as f64;
        vec![
            one_hot[0],
            one_hot[1],
            one_hot[2],
            log2(self.bytes_in as f64),
            log2(self.bytes_out as f64),
            log2(self.flops),
            log2(self.gws as f64),
            log2(self.lws as f64),
            intensity,
            self.extra_ratio,
        ]
    }

    /// Number of features produced by [`features`](Self::features).
    pub const NUM_FEATURES: usize = 10;
}

/// Configuration of the sampling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Number of distinct kernels to sample.
    pub kernels: usize,
    /// Extra-load ratios to profile each kernel at.
    pub extra_ratios: [f64; 5],
    /// Relative measurement noise (standard deviation as a fraction of the
    /// true latency) applied to simulated measurements.
    pub noise: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            kernels: 120,
            extra_ratios: [0.0, 0.25, 0.5, 1.0, 2.0],
            noise: 0.03,
            seed: 0x1a5d_3f77,
        }
    }
}

/// Generates profiling samples against a device's cost model.
#[derive(Debug, Clone)]
pub struct KernelSampler {
    device: DeviceSpec,
    config: SamplingConfig,
}

impl KernelSampler {
    /// Create a sampler for `device`.
    pub fn new(device: DeviceSpec, config: SamplingConfig) -> Self {
        KernelSampler { device, config }
    }

    /// Run the sweep and return all samples.
    pub fn collect(&self) -> Vec<KernelSample> {
        let mut rng = SplitMix64::seed_from_u64(self.config.seed);
        let cost = KernelCostModel::new(self.device.clone());
        let mut samples = Vec::with_capacity(self.config.kernels * self.config.extra_ratios.len());

        for _ in 0..self.config.kernels {
            let category = match rng.gen_range_inclusive(0, 2) {
                0 => KernelCategory::Elemental,
                1 => KernelCategory::Reusable,
                _ => KernelCategory::Hierarchical,
            };
            let kernel = self.sample_kernel(category, &mut rng);
            for &ratio in &self.config.extra_ratios {
                let extra = (kernel.total_bytes() as f64 * ratio) as u64;
                let true_latency = cost.latency_with_extra_load_ms(&kernel, extra);
                let noise = 1.0 + self.config.noise * (rng.gen_f64() * 2.0 - 1.0);
                samples.push(KernelSample {
                    category,
                    bytes_in: kernel.bytes_in,
                    bytes_out: kernel.bytes_out,
                    flops: kernel.flops,
                    gws: kernel.launch.global_items(),
                    lws: kernel.launch.local_items(),
                    extra_ratio: ratio,
                    latency_ms: (true_latency * noise).max(0.0),
                });
            }
        }
        samples
    }

    fn sample_kernel(&self, category: KernelCategory, rng: &mut SplitMix64) -> KernelDesc {
        // Tensor sizes spanning the ranges seen in the evaluated models:
        // hidden sizes 384..4096, token counts 64..1024.
        let hidden = 1u64 << rng.gen_range_inclusive(9, 12); // 512..4096
        let tokens = 1u64 << rng.gen_range_inclusive(6, 10); // 64..1024
        let elem_bytes = 2u64;
        match category {
            KernelCategory::Elemental => {
                let bytes = tokens * hidden * elem_bytes;
                KernelDesc::new(
                    "sample_elem",
                    category,
                    (tokens * hidden) as f64,
                    bytes,
                    bytes,
                )
                .with_launch(LaunchDims::new([tokens * hidden / 4, 1, 1], [64, 1, 1]))
            }
            KernelCategory::Reusable => {
                let out = 1u64 << rng.gen_range_inclusive(9, 12);
                let bytes_in = (tokens * hidden + hidden * out) * elem_bytes;
                let bytes_out = tokens * out * elem_bytes;
                KernelDesc::new(
                    "sample_matmul",
                    category,
                    (2 * tokens * hidden * out) as f64,
                    bytes_in,
                    bytes_out,
                )
                .with_launch(LaunchDims::new([out / 4, tokens / 4, 1], [8, 8, 1]))
            }
            KernelCategory::Hierarchical => {
                let bytes = tokens * hidden * elem_bytes;
                KernelDesc::new(
                    "sample_layernorm",
                    category,
                    (4 * tokens * hidden) as f64,
                    bytes,
                    bytes,
                )
                .with_launch(LaunchDims::new([tokens, 1, 1], [32, 1, 1]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_produces_expected_count_and_valid_samples() {
        let config = SamplingConfig {
            kernels: 20,
            ..Default::default()
        };
        let samples = KernelSampler::new(DeviceSpec::oneplus_12(), config).collect();
        assert_eq!(samples.len(), 20 * 5);
        for s in &samples {
            assert!(s.latency_ms >= 0.0);
            assert!(s.bytes_in > 0);
            assert_eq!(s.features().len(), KernelSample::NUM_FEATURES);
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let config = SamplingConfig {
            kernels: 10,
            ..Default::default()
        };
        let a = KernelSampler::new(DeviceSpec::oneplus_12(), config).collect();
        let b = KernelSampler::new(DeviceSpec::oneplus_12(), config).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn latency_grows_with_extra_ratio_within_a_kernel() {
        let config = SamplingConfig {
            kernels: 5,
            noise: 0.0,
            ..Default::default()
        };
        let samples = KernelSampler::new(DeviceSpec::oneplus_12(), config).collect();
        for chunk in samples.chunks(5) {
            for pair in chunk.windows(2) {
                assert!(pair[1].latency_ms >= pair[0].latency_ms - 1e-9);
            }
        }
    }

    #[test]
    fn all_three_categories_appear() {
        let samples =
            KernelSampler::new(DeviceSpec::oneplus_12(), SamplingConfig::default()).collect();
        for cat in [
            KernelCategory::Elemental,
            KernelCategory::Reusable,
            KernelCategory::Hierarchical,
        ] {
            assert!(samples.iter().any(|s| s.category == cat), "{cat:?} missing");
        }
    }
}
