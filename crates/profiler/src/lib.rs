//! # flashmem-profiler
//!
//! The offline profiling stage of FlashMem (Figure 3, "Profiler" box):
//!
//! * [`classify`] — the Table 5 operator classification (elemental / reusable /
//!   hierarchical) with memory-bandwidth, load-capacity-tolerance and
//!   compute-intensity levels.
//! * [`latency_model`] — lowering of graph nodes and fusion groups into
//!   simulator kernels, and the Figure 2 overlap-interference sweep.
//! * [`sampling`] — systematic kernel sampling with injected extra I/O, the
//!   training data of Figure 4.
//! * [`gbrt`] — a from-scratch gradient-boosted regression-tree model standing
//!   in for XGBoost (not available offline).
//! * [`capacity`] — per-layer load capacities `C_ℓ`, either via the paper's
//!   static thresholds (0% / 20% / 300%) or via the trained regressor.
//!
//! ## Example
//!
//! ```rust
//! use flashmem_gpu_sim::DeviceSpec;
//! use flashmem_graph::{FusionPlan, ModelZoo};
//! use flashmem_profiler::CapacityProfiler;
//!
//! let model = ModelZoo::vit();
//! let plan = FusionPlan::default_fusion(model.graph());
//! let capacities = CapacityProfiler::new(DeviceSpec::oneplus_12())
//!     .capacities(model.graph(), &plan);
//! assert_eq!(capacities.len(), plan.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capacity;
pub mod classify;
pub mod gbrt;
pub mod latency_model;
pub mod sampling;

pub use capacity::{CapacityPolicy, CapacityProfiler, LoadCapacity};
pub use classify::{kernel_category, kernel_category_of, Level, OperatorClass};
pub use gbrt::{GbrtConfig, GbrtModel, RegressionTree};
pub use latency_model::{
    kernel_for_group, kernel_for_node, overlap_sweep, LoweringOptions, OverlapPoint,
};
pub use sampling::{KernelSample, KernelSampler, SamplingConfig};
