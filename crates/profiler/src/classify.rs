//! Operator classification (Table 5 of the paper).
//!
//! Maps graph-level operator kinds onto simulator kernel categories and the
//! qualitative characteristics the paper tabulates: memory-bandwidth usage,
//! load-capacity tolerance and computational intensity.

use flashmem_gpu_sim::kernel::KernelCategory;
use flashmem_graph::{OpCategory, OpKind};
use serde::{Deserialize, Serialize};

/// A qualitative level used in Table 5 ("Low" / "Medium" / "High").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl Level {
    /// Lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Level::Low => "low",
            Level::Medium => "medium",
            Level::High => "high",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The full classification of an operator class, mirroring Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorClass {
    /// The coarse category.
    pub category: OpCategory,
    /// Memory-bandwidth pressure.
    pub memory_bandwidth: Level,
    /// Tolerance for concurrent data loading.
    pub load_capacity_tolerance: Level,
    /// Computational intensity.
    pub compute_intensity: Level,
}

impl OperatorClass {
    /// Classification of a category, exactly as tabulated in the paper:
    ///
    /// | Category | M.B. | L.C. tolerance | C.I. |
    /// |---|---|---|---|
    /// | Elemental (ReLU, Add) | Low | Medium | Low |
    /// | Reusable (Conv, MatMul) | Medium | High | High |
    /// | Hierarchical (LayerNorm) | High | Low | Medium |
    pub fn of_category(category: OpCategory) -> Self {
        match category {
            OpCategory::Elemental => OperatorClass {
                category,
                memory_bandwidth: Level::Low,
                load_capacity_tolerance: Level::Medium,
                compute_intensity: Level::Low,
            },
            OpCategory::Reusable => OperatorClass {
                category,
                memory_bandwidth: Level::Medium,
                load_capacity_tolerance: Level::High,
                compute_intensity: Level::High,
            },
            OpCategory::Hierarchical => OperatorClass {
                category,
                memory_bandwidth: Level::High,
                load_capacity_tolerance: Level::Low,
                compute_intensity: Level::Medium,
            },
        }
    }

    /// Classification of a concrete operator kind.
    pub fn of_kind(kind: OpKind) -> Self {
        Self::of_category(kind.category())
    }

    /// The latency-increase budget granted to this class when extra weight
    /// data is streamed during its kernels: 0% hierarchical, 20% reusable,
    /// 300% elemental (Section 4.2 / Figure 2).
    pub fn capacity_threshold(&self) -> f64 {
        self.category.capacity_threshold()
    }
}

/// Convert a graph operator category into the simulator's kernel category.
pub fn kernel_category(category: OpCategory) -> KernelCategory {
    match category {
        OpCategory::Elemental => KernelCategory::Elemental,
        OpCategory::Reusable => KernelCategory::Reusable,
        OpCategory::Hierarchical => KernelCategory::Hierarchical,
    }
}

/// Convert an operator kind straight to the simulator's kernel category.
pub fn kernel_category_of(kind: OpKind) -> KernelCategory {
    kernel_category(kind.category())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_rows_reproduced() {
        let elemental = OperatorClass::of_kind(OpKind::ReLU);
        assert_eq!(elemental.memory_bandwidth, Level::Low);
        assert_eq!(elemental.load_capacity_tolerance, Level::Medium);
        assert_eq!(elemental.compute_intensity, Level::Low);

        let reusable = OperatorClass::of_kind(OpKind::MatMul);
        assert_eq!(reusable.memory_bandwidth, Level::Medium);
        assert_eq!(reusable.load_capacity_tolerance, Level::High);
        assert_eq!(reusable.compute_intensity, Level::High);

        let hierarchical = OperatorClass::of_kind(OpKind::LayerNorm);
        assert_eq!(hierarchical.memory_bandwidth, Level::High);
        assert_eq!(hierarchical.load_capacity_tolerance, Level::Low);
        assert_eq!(hierarchical.compute_intensity, Level::Medium);
    }

    #[test]
    fn thresholds_follow_section_4_2() {
        assert_eq!(
            OperatorClass::of_kind(OpKind::Softmax).capacity_threshold(),
            0.0
        );
        assert_eq!(
            OperatorClass::of_kind(OpKind::Conv2d).capacity_threshold(),
            0.20
        );
        assert_eq!(
            OperatorClass::of_kind(OpKind::Add).capacity_threshold(),
            3.0
        );
    }

    #[test]
    fn kernel_category_mapping_is_consistent() {
        for kind in OpKind::all() {
            let via_category = kernel_category(kind.category());
            assert_eq!(via_category, kernel_category_of(kind));
        }
        assert_eq!(kernel_category_of(OpKind::MatMul), KernelCategory::Reusable);
        assert_eq!(kernel_category_of(OpKind::GeLU), KernelCategory::Elemental);
        assert_eq!(
            kernel_category_of(OpKind::GroupNorm),
            KernelCategory::Hierarchical
        );
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Low < Level::Medium);
        assert!(Level::Medium < Level::High);
        assert_eq!(Level::High.to_string(), "high");
    }
}
