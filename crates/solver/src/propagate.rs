//! Bounds propagation.
//!
//! Before and during search, the solver tightens variable domains by
//! propagating the linear and implication constraints. Propagation is the
//! workhorse that lets OPG instances with thousands of chunk variables stay
//! tractable: most `x_{w,ℓ}` variables are fixed to zero by the capacity and
//! completeness constraints long before branching touches them.

use crate::model::{Constraint, CpModel, Domain, LinearExpr};

/// Result of a propagation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationResult {
    /// Domains are consistent (possibly tightened).
    Consistent,
    /// Some domain became empty — the current subproblem is infeasible.
    Conflict,
}

/// Propagate all constraints to a fixed point over the given domains.
///
/// Returns [`PropagationResult::Conflict`] as soon as any domain empties.
/// The procedure is sound (never removes a feasible value) and terminates
/// because every tightening strictly shrinks a finite domain.
pub fn propagate(model: &CpModel, domains: &mut [Domain]) -> PropagationResult {
    // Fixed-point loop: iterate until no domain changes. Constraint counts in
    // OPG windows are small (hundreds), so a simple sweep is fast enough.
    loop {
        let mut changed = false;
        for constraint in model.constraints() {
            match propagate_one(constraint, domains) {
                StepResult::Conflict => return PropagationResult::Conflict,
                StepResult::Changed => changed = true,
                StepResult::Unchanged => {}
            }
        }
        if !changed {
            return PropagationResult::Consistent;
        }
    }
}

enum StepResult {
    Unchanged,
    Changed,
    Conflict,
}

/// Minimum and maximum achievable value of `expr` under current bounds.
fn expr_bounds(expr: &LinearExpr, domains: &[Domain]) -> (i64, i64) {
    let mut lo = expr.constant;
    let mut hi = expr.constant;
    for (v, c) in &expr.terms {
        let d = domains[v.0];
        if *c >= 0 {
            lo += c * d.lo;
            hi += c * d.hi;
        } else {
            lo += c * d.hi;
            hi += c * d.lo;
        }
    }
    (lo, hi)
}

fn tighten(domains: &mut [Domain], var: usize, lo: i64, hi: i64) -> StepResult {
    let d = domains[var];
    let nd = Domain::new(d.lo.max(lo), d.hi.min(hi));
    if nd.is_empty() {
        domains[var] = nd;
        return StepResult::Conflict;
    }
    if nd != d {
        domains[var] = nd;
        StepResult::Changed
    } else {
        StepResult::Unchanged
    }
}

fn propagate_le(expr: &LinearExpr, bound: i64, domains: &mut [Domain]) -> StepResult {
    let (lo, _) = expr_bounds(expr, domains);
    if lo > bound {
        return StepResult::Conflict;
    }
    // For each term, the slack available to it determines its tightest bound.
    let mut changed = false;
    for (v, c) in &expr.terms {
        if *c == 0 {
            continue;
        }
        let d = domains[v.0];
        // Contribution of the other terms at their minimum.
        let others_lo = lo - if *c >= 0 { c * d.lo } else { c * d.hi };
        let slack = bound - others_lo;
        let result = if *c > 0 {
            // c*x <= slack  =>  x <= floor(slack / c)
            tighten(domains, v.0, i64::MIN, slack.div_euclid(*c))
        } else {
            // c*x <= slack with c < 0  =>  x >= ceil(slack / c)
            let c_abs = -*c;
            tighten(domains, v.0, (-slack).div_euclid(c_abs), i64::MAX)
        };
        match result {
            StepResult::Conflict => return StepResult::Conflict,
            StepResult::Changed => changed = true,
            StepResult::Unchanged => {}
        }
    }
    if changed {
        StepResult::Changed
    } else {
        StepResult::Unchanged
    }
}

fn propagate_ge(expr: &LinearExpr, bound: i64, domains: &mut [Domain]) -> StepResult {
    // expr >= bound  <=>  -expr <= -bound
    let negated = LinearExpr {
        terms: expr.terms.iter().map(|(v, c)| (*v, -c)).collect(),
        constant: -expr.constant,
    };
    propagate_le(&negated, -bound, domains)
}

fn propagate_one(constraint: &Constraint, domains: &mut [Domain]) -> StepResult {
    match constraint {
        Constraint::LinearLe { expr, bound } => propagate_le(expr, *bound, domains),
        Constraint::LinearGe { expr, bound } => propagate_ge(expr, *bound, domains),
        Constraint::LinearEq { expr, bound } => {
            let a = propagate_le(expr, *bound, domains);
            if matches!(a, StepResult::Conflict) {
                return StepResult::Conflict;
            }
            let b = propagate_ge(expr, *bound, domains);
            match (a, b) {
                (_, StepResult::Conflict) => StepResult::Conflict,
                (StepResult::Changed, _) | (_, StepResult::Changed) => StepResult::Changed,
                _ => StepResult::Unchanged,
            }
        }
        Constraint::IfGeThenLe {
            cond,
            threshold,
            then,
            bound,
        } => {
            let c = domains[cond.0];
            let t = domains[then.0];
            // If the condition must hold, enforce the consequent.
            if c.lo >= *threshold {
                return tighten(domains, then.0, i64::MIN, *bound);
            }
            // If the consequent cannot hold, the condition must be false.
            if t.lo > *bound {
                return tighten(domains, cond.0, i64::MIN, threshold - 1);
            }
            StepResult::Unchanged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearExpr;

    #[test]
    fn le_tightens_upper_bounds() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 100, "x");
        let y = m.new_int_var(0, 100, "y");
        m.add_le(LinearExpr::sum(&[x, y]), 10);
        let mut domains = m.domains().to_vec();
        assert_eq!(propagate(&m, &mut domains), PropagationResult::Consistent);
        assert_eq!(domains[x.0].hi, 10);
        assert_eq!(domains[y.0].hi, 10);
    }

    #[test]
    fn ge_tightens_lower_bounds() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 100, "x");
        m.add_ge(LinearExpr::var(x), 40);
        let mut domains = m.domains().to_vec();
        propagate(&m, &mut domains);
        assert_eq!(domains[x.0].lo, 40);
    }

    #[test]
    fn eq_fixes_single_variable() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 100, "x");
        m.add_eq(LinearExpr::var(x).plus_const(5), 12);
        let mut domains = m.domains().to_vec();
        propagate(&m, &mut domains);
        assert!(domains[x.0].is_fixed());
        assert_eq!(domains[x.0].lo, 7);
    }

    #[test]
    fn conflict_detected_when_bounds_cross() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 5, "x");
        m.add_ge(LinearExpr::var(x), 10);
        let mut domains = m.domains().to_vec();
        assert_eq!(propagate(&m, &mut domains), PropagationResult::Conflict);
    }

    #[test]
    fn implication_fires_when_condition_certain() {
        let mut m = CpModel::new();
        let x = m.new_int_var(2, 5, "x"); // always >= 1
        let z = m.new_int_var(0, 100, "z");
        m.add_if_ge_then_le(x, 1, z, 7);
        let mut domains = m.domains().to_vec();
        propagate(&m, &mut domains);
        assert_eq!(domains[z.0].hi, 7);
    }

    #[test]
    fn implication_contrapositive() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 5, "x");
        let z = m.new_int_var(50, 100, "z"); // consequent impossible (bound 7)
        m.add_if_ge_then_le(x, 3, z, 7);
        let mut domains = m.domains().to_vec();
        propagate(&m, &mut domains);
        assert_eq!(domains[x.0].hi, 2);
    }

    #[test]
    fn negative_coefficients_handled() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 10, "x");
        let y = m.new_int_var(0, 10, "y");
        // x - y <= 2  combined with  x >= 9  forces  y >= 7.
        m.add_le(LinearExpr::var(x).plus(y, -1), 2);
        m.add_ge(LinearExpr::var(x), 9);
        let mut domains = m.domains().to_vec();
        assert_eq!(propagate(&m, &mut domains), PropagationResult::Consistent);
        assert!(domains[y.0].lo >= 7, "y domain {:?}", domains[y.0]);
    }

    #[test]
    fn chained_propagation_reaches_fixed_point() {
        let mut m = CpModel::new();
        let a = m.new_int_var(0, 100, "a");
        let b = m.new_int_var(0, 100, "b");
        let c = m.new_int_var(0, 100, "c");
        m.add_eq(LinearExpr::var(a), 3);
        m.add_le(LinearExpr::var(b).plus(a, -1), 0); // b <= a
        m.add_le(LinearExpr::var(c).plus(b, -1), 0); // c <= b
        let mut domains = m.domains().to_vec();
        propagate(&m, &mut domains);
        assert_eq!(domains[a.0], Domain::new(3, 3));
        assert_eq!(domains[b.0].hi, 3);
        assert_eq!(domains[c.0].hi, 3);
    }

    #[test]
    fn propagation_never_removes_feasible_solutions() {
        // Sound w.r.t. a brute-force check on a small model.
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 6, "x");
        let y = m.new_int_var(0, 6, "y");
        m.add_le(LinearExpr::sum(&[x, y]), 7);
        m.add_ge(LinearExpr::var(x).plus(y, 2), 6);
        m.add_if_ge_then_le(x, 4, y, 2);
        let mut domains = m.domains().to_vec();
        assert_eq!(propagate(&m, &mut domains), PropagationResult::Consistent);
        for xv in 0..=6i64 {
            for yv in 0..=6i64 {
                if m.is_feasible(&[xv, yv]) {
                    assert!(
                        xv >= domains[x.0].lo
                            && xv <= domains[x.0].hi
                            && yv >= domains[y.0].lo
                            && yv <= domains[y.0].hi,
                        "feasible point ({xv},{yv}) pruned"
                    );
                }
            }
        }
    }
}
