//! Branch-and-bound search.
//!
//! [`CpSolver`] combines the bounds propagator with depth-first branch and
//! bound: pick the unfixed variable with the smallest domain, try its lower
//! half first (OPG variables prefer "load as little as possible as late as
//! possible"), prune by the objective bound, and respect a wall-clock time
//! limit — returning `Feasible` rather than `Optimal` when the limit is hit,
//! exactly like the CP-SAT statuses reported in Table 4 of the paper.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::model::{CpModel, Domain, LinearExpr, Sense};
use crate::propagate::{propagate, PropagationResult};
use crate::solution::{Solution, SolveOutcome, SolveStatus};

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Wall-clock limit. The paper uses 150 s for the full LC-OPG run; the
    /// per-window instances FlashMem solves use much smaller limits.
    pub time_limit: Duration,
    /// Cap on explored search nodes (safety net against degenerate models).
    pub max_nodes: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: Duration::from_secs(150),
            max_nodes: 2_000_000,
        }
    }
}

impl SolverConfig {
    /// A configuration with the given time limit in milliseconds.
    pub fn with_time_limit_ms(ms: u64) -> Self {
        SolverConfig {
            time_limit: Duration::from_millis(ms),
            ..Default::default()
        }
    }
}

/// The branch-and-bound CP solver.
#[derive(Debug, Clone, Default)]
pub struct CpSolver {
    config: SolverConfig,
}

struct SearchState<'a> {
    model: &'a CpModel,
    objective: Option<&'a (LinearExpr, Sense)>,
    best: Option<(i64, Vec<i64>)>,
    deadline: Instant,
    nodes: u64,
    max_nodes: u64,
    hit_limit: bool,
}

impl CpSolver {
    /// Create a solver with the default configuration.
    pub fn new() -> Self {
        CpSolver::default()
    }

    /// Create a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        CpSolver { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Solve `model`, optionally warm-starting from `hint` (a full assignment
    /// that, if feasible, immediately bounds the objective — this is how the
    /// LC-OPG greedy fallback seeds the exact search).
    pub fn solve_with_hint(&self, model: &CpModel, hint: Option<&[i64]>) -> SolveOutcome {
        let started = Instant::now();
        let mut domains: Vec<Domain> = model.domains().to_vec();

        // Root propagation.
        if propagate(model, &mut domains) == PropagationResult::Conflict {
            return SolveOutcome {
                status: SolveStatus::Infeasible,
                solution: None,
                objective: None,
                nodes_explored: 0,
                solve_time: started.elapsed(),
            };
        }

        let mut state = SearchState {
            model,
            objective: model.objective(),
            best: None,
            deadline: started + self.config.time_limit,
            nodes: 0,
            max_nodes: self.config.max_nodes,
            hit_limit: false,
        };

        // Seed with the hint if it is feasible.
        if let Some(h) = hint {
            if model.is_feasible(h) {
                let obj = state
                    .objective
                    .map(|(expr, sense)| normalised_objective(expr, *sense, h))
                    .unwrap_or(0);
                state.best = Some((obj, h.to_vec()));
            }
        }

        dfs(&mut state, domains);

        let elapsed = started.elapsed();
        match state.best {
            Some((obj, assignment)) => {
                let status = if state.hit_limit {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                let objective = state.objective.map(|(_, sense)| match sense {
                    Sense::Minimize => obj,
                    Sense::Maximize => -obj,
                });
                // A model without an objective is a pure satisfaction problem:
                // any solution is "optimal".
                SolveOutcome {
                    status,
                    solution: Some(Solution::new(assignment)),
                    objective: objective.or(Some(CpModel::eval_expr(&LinearExpr::new(), &[]))),
                    nodes_explored: state.nodes,
                    solve_time: elapsed,
                }
            }
            None => SolveOutcome {
                status: if state.hit_limit {
                    SolveStatus::Unknown
                } else {
                    SolveStatus::Infeasible
                },
                solution: None,
                objective: None,
                nodes_explored: state.nodes,
                solve_time: elapsed,
            },
        }
    }

    /// Solve `model` without a warm start.
    pub fn solve(&self, model: &CpModel) -> SolveOutcome {
        self.solve_with_hint(model, None)
    }
}

/// Objective value normalised so that *smaller is better* regardless of sense.
fn normalised_objective(expr: &LinearExpr, sense: Sense, assignment: &[i64]) -> i64 {
    let v = CpModel::eval_expr(expr, assignment);
    match sense {
        Sense::Minimize => v,
        Sense::Maximize => -v,
    }
}

/// Lower bound of the (normalised) objective under current domains.
fn objective_lower_bound(expr: &LinearExpr, sense: Sense, domains: &[Domain]) -> i64 {
    let mut bound = match sense {
        Sense::Minimize => expr.constant,
        Sense::Maximize => -expr.constant,
    };
    for (v, c) in &expr.terms {
        let d = domains[v.0];
        let coeff = match sense {
            Sense::Minimize => *c,
            Sense::Maximize => -*c,
        };
        bound += if coeff >= 0 {
            coeff * d.lo
        } else {
            coeff * d.hi
        };
    }
    bound
}

fn dfs(state: &mut SearchState<'_>, mut domains: Vec<Domain>) {
    state.nodes += 1;
    if state.nodes.is_multiple_of(256)
        && (Instant::now() >= state.deadline || state.nodes >= state.max_nodes)
    {
        state.hit_limit = true;
    }
    if state.hit_limit {
        return;
    }

    if propagate(state.model, &mut domains) == PropagationResult::Conflict {
        return;
    }

    // Objective pruning.
    if let (Some((expr, sense)), Some((best, _))) = (state.objective, &state.best) {
        let lb = objective_lower_bound(expr, *sense, &domains);
        if lb >= *best {
            return;
        }
    }

    // Pick the unfixed variable with the smallest domain (fail-first).
    let mut branch_var: Option<(usize, u64)> = None;
    for (idx, d) in domains.iter().enumerate() {
        if !d.is_fixed() {
            let size = d.size();
            match branch_var {
                Some((_, best_size)) if best_size <= size => {}
                _ => branch_var = Some((idx, size)),
            }
        }
    }

    let Some((var, _)) = branch_var else {
        // All variables fixed: a complete assignment (propagation already
        // verified bounds; re-check the full model for safety).
        let assignment: Vec<i64> = domains.iter().map(|d| d.lo).collect();
        if !state.model.is_feasible(&assignment) {
            return;
        }
        let obj = state
            .objective
            .map(|(expr, sense)| normalised_objective(expr, *sense, &assignment))
            .unwrap_or(0);
        let better = state.best.as_ref().map(|(b, _)| obj < *b).unwrap_or(true);
        if better {
            state.best = Some((obj, assignment));
        }
        return;
    };

    // Branch: split the domain at its midpoint, exploring the lower half first
    // (prefer small loads / early-zero chunk allocations).
    let d = domains[var];
    let mid = d.lo + (d.hi - d.lo) / 2;

    let mut lower = domains.clone();
    lower[var] = Domain::new(d.lo, mid);
    dfs(state, lower);

    if state.hit_limit {
        return;
    }

    let mut upper = domains;
    upper[var] = Domain::new(mid + 1, d.hi);
    dfs(state, upper);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearExpr;

    #[test]
    fn simple_minimisation_finds_optimum() {
        // minimise x + y  s.t.  x + 2y >= 7, x,y in [0,10]
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 10, "x");
        let y = m.new_int_var(0, 10, "y");
        m.add_ge(LinearExpr::var(x).plus(y, 2), 7);
        m.minimize(LinearExpr::sum(&[x, y]));
        let out = CpSolver::new().solve(&m);
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective, Some(4)); // y=4 wait: x=1,y=3 -> 4; or x=0,y=4 -> 4
        let s = out.solution.unwrap();
        assert!(m.is_feasible(s.values()));
    }

    #[test]
    fn maximisation_supported() {
        // maximise 3x + y  s.t.  x + y <= 6
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 10, "x");
        let y = m.new_int_var(0, 10, "y");
        m.add_le(LinearExpr::sum(&[x, y]), 6);
        m.maximize(LinearExpr::var(x).plus(x, 2).plus(y, 1));
        let out = CpSolver::new().solve(&m);
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective, Some(18)); // x=6, y=0
    }

    #[test]
    fn infeasible_model_detected() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 3, "x");
        m.add_ge(LinearExpr::var(x), 10);
        let out = CpSolver::new().solve(&m);
        assert_eq!(out.status, SolveStatus::Infeasible);
        assert!(out.solution.is_none());
    }

    #[test]
    fn satisfaction_problem_without_objective() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 5, "x");
        let y = m.new_int_var(0, 5, "y");
        m.add_eq(LinearExpr::sum(&[x, y]), 7);
        let out = CpSolver::new().solve(&m);
        assert_eq!(out.status, SolveStatus::Optimal);
        let s = out.solution.unwrap();
        assert_eq!(s.value(x) + s.value(y), 7);
    }

    #[test]
    fn implication_respected_in_solutions() {
        // Chunks assigned to a layer force the earliest-load index down: the
        // shape of constraint C1.
        let mut m = CpModel::new();
        let chunks = m.new_int_var(0, 4, "x_w_l");
        let earliest = m.new_int_var(0, 9, "z_w");
        m.add_ge(LinearExpr::var(chunks), 1);
        m.add_if_ge_then_le(chunks, 1, earliest, 3);
        m.maximize(LinearExpr::var(earliest));
        let out = CpSolver::new().solve(&m);
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.solution.unwrap().value(earliest), 3);
    }

    #[test]
    fn warm_start_hint_is_used_as_bound() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 50, "x");
        m.add_ge(LinearExpr::var(x), 5);
        m.minimize(LinearExpr::var(x));
        let out = CpSolver::new().solve_with_hint(&m, Some(&[7]));
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective, Some(5));
    }

    #[test]
    fn infeasible_hint_is_ignored() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 50, "x");
        m.add_ge(LinearExpr::var(x), 5);
        m.minimize(LinearExpr::var(x));
        let out = CpSolver::new().solve_with_hint(&m, Some(&[2]));
        assert_eq!(out.objective, Some(5));
    }

    #[test]
    fn time_limit_yields_feasible_not_optimal() {
        // A knapsack-ish model large enough that a 0 ms limit cannot prove
        // optimality but the first dive still finds something feasible.
        let mut m = CpModel::new();
        let vars: Vec<_> = (0..30)
            .map(|i| m.new_int_var(0, 20, &format!("v{i}")))
            .collect();
        // Σ v_i >= 100
        m.add_ge(LinearExpr::sum(&vars), 100);
        m.minimize(LinearExpr::sum(&vars));
        let solver = CpSolver::with_config(SolverConfig {
            time_limit: Duration::from_millis(0),
            max_nodes: 10_000,
        });
        let out = solver.solve(&m);
        assert!(
            matches!(out.status, SolveStatus::Feasible | SolveStatus::Unknown),
            "status {:?}",
            out.status
        );
    }

    #[test]
    fn optimal_solutions_are_feasible_under_model_check() {
        let mut m = CpModel::new();
        let a = m.new_int_var(0, 8, "a");
        let b = m.new_int_var(0, 8, "b");
        let c = m.new_int_var(0, 8, "c");
        m.add_le(LinearExpr::sum(&[a, b, c]), 12);
        m.add_ge(LinearExpr::var(a).plus(b, 1), 5);
        m.add_if_ge_then_le(a, 4, c, 2);
        m.minimize(LinearExpr::var(a).plus(b, 3).plus(c, 1));
        let out = CpSolver::new().solve(&m);
        let sol = out.solution.expect("solution");
        assert!(m.is_feasible(sol.values()));
        assert_eq!(out.status, SolveStatus::Optimal);
    }

    #[test]
    fn node_count_reported() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 3, "x");
        m.minimize(LinearExpr::var(x));
        let out = CpSolver::new().solve(&m);
        assert!(out.nodes_explored >= 1);
        assert!(out.solve_time <= Duration::from_secs(5));
    }
}
