//! Solutions and solve outcomes.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::model::VarId;

/// Termination status of a solve, mirroring CP-SAT's vocabulary (the paper's
/// Table 4 reports OPTIMAL and FEASIBLE statuses under a 150 s limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal solution was found and proved optimal.
    Optimal,
    /// A solution was found but the time/node limit prevented an optimality
    /// proof.
    Feasible,
    /// The model has no solution.
    Infeasible,
    /// The limit was hit before any solution was found.
    Unknown,
}

impl SolveStatus {
    /// True if a usable solution accompanies this status.
    pub fn has_solution(&self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }

    /// Uppercase name as printed in Table 4 (`OPTIMAL`, `FEASIBLE`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            SolveStatus::Optimal => "OPTIMAL",
            SolveStatus::Feasible => "FEASIBLE",
            SolveStatus::Infeasible => "INFEASIBLE",
            SolveStatus::Unknown => "UNKNOWN",
        }
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete variable assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    values: Vec<i64>,
}

impl Solution {
    /// Wrap an assignment vector (indexed by `VarId`).
    pub fn new(values: Vec<i64>) -> Self {
        Solution { values }
    }

    /// Value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: VarId) -> i64 {
        self.values[v.0]
    }

    /// The raw assignment, indexed by variable id.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the empty assignment.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The result of a solve call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// Termination status.
    pub status: SolveStatus,
    /// The best solution found, if any.
    pub solution: Option<Solution>,
    /// Objective value of that solution (in the model's original sense).
    pub objective: Option<i64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: u64,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
}

impl SolveOutcome {
    /// The solution, or an error message suitable for propagation.
    pub fn require_solution(&self) -> Result<&Solution, String> {
        self.solution
            .as_ref()
            .ok_or_else(|| format!("solver terminated with status {}", self.status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates_and_names() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unknown.has_solution());
        assert_eq!(SolveStatus::Optimal.name(), "OPTIMAL");
        assert_eq!(SolveStatus::Feasible.to_string(), "FEASIBLE");
    }

    #[test]
    fn solution_accessors() {
        let s = Solution::new(vec![1, 2, 3]);
        assert_eq!(s.value(VarId(1)), 2);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn require_solution_reports_status() {
        let out = SolveOutcome {
            status: SolveStatus::Infeasible,
            solution: None,
            objective: None,
            nodes_explored: 0,
            solve_time: Duration::from_millis(1),
        };
        let err = out.require_solution().unwrap_err();
        assert!(err.contains("INFEASIBLE"));
    }
}
