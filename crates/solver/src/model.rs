//! Constraint-model construction.
//!
//! The OPG formulation (Section 3.1 of the paper) needs a modest constraint
//! surface: bounded integer variables, linear equalities/inequalities,
//! implications of the form `(x ≥ k) ⇒ (y ≤ m)`, and a linear objective to
//! minimise. [`CpModel`] exposes exactly that surface with an API shaped after
//! Google OR-Tools' CP-SAT builder, which the paper uses.

use serde::{Deserialize, Serialize};

/// Identifier of an integer decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Inclusive integer domain `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Domain {
    /// Create a domain; panics never — an inverted range is normalised to an
    /// explicitly empty domain (`lo > hi` is the canonical empty marker).
    pub fn new(lo: i64, hi: i64) -> Self {
        Domain { lo, hi }
    }

    /// True if no value remains.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// True if exactly one value remains.
    pub fn is_fixed(&self) -> bool {
        self.lo == self.hi
    }

    /// Number of values in the domain (0 if empty).
    pub fn size(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo + 1) as u64
        }
    }

    /// Intersect with `[lo, hi]`.
    pub fn clamp_to(&self, lo: i64, hi: i64) -> Domain {
        Domain {
            lo: self.lo.max(lo),
            hi: self.hi.min(hi),
        }
    }
}

/// A linear expression `Σ coeff_i · var_i + constant`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearExpr {
    /// Terms as (variable, coefficient) pairs.
    pub terms: Vec<(VarId, i64)>,
    /// Constant offset.
    pub constant: i64,
}

impl LinearExpr {
    /// An empty expression (constant 0).
    pub fn new() -> Self {
        LinearExpr::default()
    }

    /// A single-variable expression with coefficient 1.
    pub fn var(v: VarId) -> Self {
        LinearExpr {
            terms: vec![(v, 1)],
            constant: 0,
        }
    }

    /// Add `coeff · v` to the expression (builder style).
    pub fn plus(mut self, v: VarId, coeff: i64) -> Self {
        self.terms.push((v, coeff));
        self
    }

    /// Add a constant (builder style).
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Build an expression summing the given variables with coefficient 1.
    pub fn sum(vars: &[VarId]) -> Self {
        LinearExpr {
            terms: vars.iter().map(|v| (*v, 1)).collect(),
            constant: 0,
        }
    }

    /// True if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A constraint over integer variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// `expr ≤ bound`.
    LinearLe {
        /// Left-hand side.
        expr: LinearExpr,
        /// Right-hand side bound.
        bound: i64,
    },
    /// `expr ≥ bound`.
    LinearGe {
        /// Left-hand side.
        expr: LinearExpr,
        /// Right-hand side bound.
        bound: i64,
    },
    /// `expr = bound`.
    LinearEq {
        /// Left-hand side.
        expr: LinearExpr,
        /// Right-hand side value.
        bound: i64,
    },
    /// `(cond ≥ threshold) ⇒ (then ≤ bound)` — the C1 loading-distance
    /// implication of the paper (`x_{w,ℓ} ≥ 1 ⇒ z_w ≤ ℓ`).
    IfGeThenLe {
        /// Condition variable.
        cond: VarId,
        /// Condition threshold.
        threshold: i64,
        /// Consequent variable.
        then: VarId,
        /// Consequent upper bound.
        bound: i64,
    },
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimise the objective (the OPG objective is a minimisation).
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// A constraint-programming model: variables, constraints and an optional
/// linear objective.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CpModel {
    names: Vec<String>,
    domains: Vec<Domain>,
    constraints: Vec<Constraint>,
    objective: Option<(LinearExpr, Sense)>,
}

impl CpModel {
    /// Create an empty model.
    pub fn new() -> Self {
        CpModel::default()
    }

    /// Add an integer variable with inclusive domain `[lo, hi]`.
    pub fn new_int_var(&mut self, lo: i64, hi: i64, name: &str) -> VarId {
        let id = VarId(self.domains.len());
        self.domains.push(Domain::new(lo, hi));
        self.names.push(name.to_string());
        id
    }

    /// Add a 0/1 variable.
    pub fn new_bool_var(&mut self, name: &str) -> VarId {
        self.new_int_var(0, 1, name)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The initial domain of `v`.
    pub fn domain(&self, v: VarId) -> Domain {
        self.domains[v.0]
    }

    /// All initial domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The name of `v`.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective, if one was set.
    pub fn objective(&self) -> Option<&(LinearExpr, Sense)> {
        self.objective.as_ref()
    }

    /// Add `expr ≤ bound`.
    pub fn add_le(&mut self, expr: LinearExpr, bound: i64) {
        self.constraints.push(Constraint::LinearLe { expr, bound });
    }

    /// Add `expr ≥ bound`.
    pub fn add_ge(&mut self, expr: LinearExpr, bound: i64) {
        self.constraints.push(Constraint::LinearGe { expr, bound });
    }

    /// Add `expr = bound`.
    pub fn add_eq(&mut self, expr: LinearExpr, bound: i64) {
        self.constraints.push(Constraint::LinearEq { expr, bound });
    }

    /// Add the implication `(cond ≥ threshold) ⇒ (then ≤ bound)`.
    pub fn add_if_ge_then_le(&mut self, cond: VarId, threshold: i64, then: VarId, bound: i64) {
        self.constraints.push(Constraint::IfGeThenLe {
            cond,
            threshold,
            then,
            bound,
        });
    }

    /// Set a minimisation objective.
    pub fn minimize(&mut self, expr: LinearExpr) {
        self.objective = Some((expr, Sense::Minimize));
    }

    /// Set a maximisation objective.
    pub fn maximize(&mut self, expr: LinearExpr) {
        self.objective = Some((expr, Sense::Maximize));
    }

    /// Evaluate a linear expression under a full assignment.
    pub fn eval_expr(expr: &LinearExpr, assignment: &[i64]) -> i64 {
        expr.terms
            .iter()
            .map(|(v, c)| c * assignment[v.0])
            .sum::<i64>()
            + expr.constant
    }

    /// Check whether a full assignment satisfies every constraint.
    pub fn is_feasible(&self, assignment: &[i64]) -> bool {
        if assignment.len() != self.domains.len() {
            return false;
        }
        for (idx, d) in self.domains.iter().enumerate() {
            if assignment[idx] < d.lo || assignment[idx] > d.hi {
                return false;
            }
        }
        self.constraints.iter().all(|c| match c {
            Constraint::LinearLe { expr, bound } => Self::eval_expr(expr, assignment) <= *bound,
            Constraint::LinearGe { expr, bound } => Self::eval_expr(expr, assignment) >= *bound,
            Constraint::LinearEq { expr, bound } => Self::eval_expr(expr, assignment) == *bound,
            Constraint::IfGeThenLe {
                cond,
                threshold,
                then,
                bound,
            } => assignment[cond.0] < *threshold || assignment[then.0] <= *bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_basics() {
        let d = Domain::new(2, 5);
        assert_eq!(d.size(), 4);
        assert!(!d.is_empty());
        assert!(!d.is_fixed());
        assert!(Domain::new(3, 2).is_empty());
        assert!(Domain::new(7, 7).is_fixed());
        assert_eq!(d.clamp_to(3, 10), Domain::new(3, 5));
    }

    #[test]
    fn expression_builders() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 10, "x");
        let y = m.new_int_var(0, 10, "y");
        let e = LinearExpr::var(x).plus(y, 2).plus_const(3);
        assert_eq!(CpModel::eval_expr(&e, &[1, 4]), 1 + 8 + 3);
        let s = LinearExpr::sum(&[x, y]);
        assert_eq!(CpModel::eval_expr(&s, &[5, 7]), 12);
        assert!(!s.is_constant());
        assert!(LinearExpr::new().is_constant());
    }

    #[test]
    fn feasibility_checks_all_constraint_kinds() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 10, "x");
        let y = m.new_int_var(0, 10, "y");
        m.add_le(LinearExpr::sum(&[x, y]), 10);
        m.add_ge(LinearExpr::var(x), 1);
        m.add_eq(LinearExpr::var(y).plus_const(1), 5);
        m.add_if_ge_then_le(x, 5, y, 3);

        assert!(m.is_feasible(&[2, 4])); // x=2<5 so implication vacuous
        assert!(!m.is_feasible(&[0, 4])); // violates x >= 1
        assert!(!m.is_feasible(&[2, 5])); // violates y + 1 == 5
        assert!(!m.is_feasible(&[6, 4])); // x>=5 forces y<=3
        assert!(!m.is_feasible(&[2])); // wrong arity
        assert!(!m.is_feasible(&[2, 40])); // out of domain
    }

    #[test]
    fn bool_var_is_binary() {
        let mut m = CpModel::new();
        let b = m.new_bool_var("b");
        assert_eq!(m.domain(b), Domain::new(0, 1));
        assert_eq!(m.name(b), "b");
    }

    #[test]
    fn objective_recorded() {
        let mut m = CpModel::new();
        let x = m.new_int_var(0, 5, "x");
        m.minimize(LinearExpr::var(x));
        assert!(matches!(m.objective(), Some((_, Sense::Minimize))));
    }
}
