//! # flashmem-solver
//!
//! A small constraint-programming solver with a CP-SAT-flavoured API, built
//! from scratch for the FlashMem reproduction (the paper formulates its
//! Overlap Plan Generation problem on Google OR-Tools CP-SAT, which is not
//! available as an offline Rust dependency).
//!
//! The supported surface is exactly what the OPG formulation needs:
//!
//! * bounded integer variables,
//! * linear `≤` / `≥` / `=` constraints,
//! * implications `(x ≥ k) ⇒ (y ≤ m)` (constraint C1 of the paper),
//! * a linear objective, minimised or maximised,
//! * bounds propagation + depth-first branch & bound with a wall-clock limit,
//!   reporting `OPTIMAL` / `FEASIBLE` / `INFEASIBLE` / `UNKNOWN` statuses like
//!   Table 4 of the paper,
//! * warm-start hints so a greedy plan can seed the exact search.
//!
//! ## Example
//!
//! ```rust
//! use flashmem_solver::{CpModel, CpSolver, LinearExpr, SolveStatus};
//!
//! let mut model = CpModel::new();
//! let x = model.new_int_var(0, 10, "x");
//! let y = model.new_int_var(0, 10, "y");
//! model.add_ge(LinearExpr::var(x).plus(y, 2), 7);
//! model.minimize(LinearExpr::sum(&[x, y]));
//!
//! let outcome = CpSolver::new().solve(&model);
//! assert_eq!(outcome.status, SolveStatus::Optimal);
//! assert_eq!(outcome.objective, Some(4));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod propagate;
pub mod search;
pub mod solution;

pub use model::{Constraint, CpModel, Domain, LinearExpr, Sense, VarId};
pub use propagate::{propagate, PropagationResult};
pub use search::{CpSolver, SolverConfig};
pub use solution::{Solution, SolveOutcome, SolveStatus};
