//! Property-style tests for the graph substrate: the builder always produces
//! valid graphs, weight chunking exactly covers every weight, and fusion plans
//! partition the node set for arbitrarily shaped MLP/conv stacks.
//!
//! The random instances come from a seeded [`SplitMix64`] sweep instead of
//! proptest (unavailable offline), so every run exercises the same corpus.

use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_graph::{FusionPlan, GraphBuilder, OpKind, WeightInventory};

const CASES: usize = 128;

/// A random straight-line network description: alternating matmul / conv /
/// elementwise / norm layers.
#[derive(Debug, Clone)]
enum LayerSpec {
    Dense(u64),
    Conv {
        channels: u64,
        kernel: u64,
        stride: u64,
    },
    Activation,
    Norm,
    Softmax,
}

fn layer(rng: &mut SplitMix64) -> LayerSpec {
    match rng.gen_range_inclusive(0, 4) {
        0 => LayerSpec::Dense(rng.gen_range_inclusive(64, 2047)),
        1 => LayerSpec::Conv {
            channels: rng.gen_range_inclusive(8, 127),
            kernel: [1, 3][rng.gen_range_inclusive(0, 1) as usize],
            stride: rng.gen_range_inclusive(1, 2),
        },
        2 => LayerSpec::Activation,
        3 => LayerSpec::Norm,
        _ => LayerSpec::Softmax,
    }
}

fn layers(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<LayerSpec> {
    (0..rng.gen_range_inclusive(min, max))
        .map(|_| layer(rng))
        .collect()
}

fn build(layers: &[LayerSpec], conv_input: bool) -> flashmem_graph::Graph {
    let mut b = GraphBuilder::new("random");
    let mut x = if conv_input {
        b.input("image", &[8, 32, 32])
    } else {
        b.input("tokens", &[64, 256])
    };
    for (i, layer) in layers.iter().enumerate() {
        x = match layer {
            LayerSpec::Dense(n) => {
                // Dense layers need a 2D view; flatten conv outputs first.
                let dims = b.output_of(x).dims.clone();
                let flat = if dims.len() > 2 {
                    let elements: u64 = dims.iter().product();
                    b.reshape(&format!("flatten{i}"), x, &[1, elements])
                } else {
                    x
                };
                b.matmul(&format!("dense{i}"), flat, *n)
            }
            LayerSpec::Conv {
                channels,
                kernel,
                stride,
            } => {
                let dims = b.output_of(x).dims.clone();
                if dims.len() == 3 {
                    b.conv2d(&format!("conv{i}"), x, *channels, *kernel, *stride)
                } else {
                    b.unary(&format!("relu{i}"), OpKind::ReLU, x)
                }
            }
            LayerSpec::Activation => b.unary(&format!("gelu{i}"), OpKind::GeLU, x),
            LayerSpec::Norm => b.norm(&format!("ln{i}"), OpKind::LayerNorm, x),
            LayerSpec::Softmax => b.softmax(&format!("softmax{i}"), x),
        };
    }
    b.build()
}

#[test]
fn builder_always_produces_valid_graphs() {
    let mut rng = SplitMix64::seed_from_u64(21);
    for _ in 0..CASES {
        let layers = layers(&mut rng, 1, 24);
        let conv_input = rng.gen_range_inclusive(0, 1) == 1;
        let graph = build(&layers, conv_input);
        assert!(graph.validate().is_ok(), "{layers:?}");
        assert_eq!(graph.len(), graph.nodes().len());
        // Node ids equal their positions.
        for (idx, node) in graph.nodes().iter().enumerate() {
            assert_eq!(node.id.0, idx);
        }
    }
}

#[test]
fn weight_chunking_exactly_covers_every_weight() {
    let mut rng = SplitMix64::seed_from_u64(22);
    for _ in 0..CASES {
        let layers = layers(&mut rng, 1, 24);
        let chunk_kib = rng.gen_range_inclusive(1, 2047);
        let graph = build(&layers, false);
        let inventory = WeightInventory::with_chunk_size(&graph, chunk_kib * 1024);
        assert_eq!(inventory.total_bytes(), graph.total_weight_bytes());
        for weight in inventory.weights() {
            let chunks = weight.chunks(inventory.chunk_bytes());
            let covered: u64 = chunks.iter().map(|c| c.bytes).sum();
            assert_eq!(covered, weight.bytes);
            assert_eq!(
                chunks.len() as u64,
                weight.chunk_count(inventory.chunk_bytes())
            );
            // No chunk exceeds the configured size.
            for chunk in &chunks {
                assert!(chunk.bytes <= inventory.chunk_bytes());
            }
        }
    }
}

#[test]
fn fusion_plans_partition_every_graph() {
    let mut rng = SplitMix64::seed_from_u64(23);
    for _ in 0..CASES {
        let layers = layers(&mut rng, 1, 24);
        let conv_input = rng.gen_range_inclusive(0, 1) == 1;
        let graph = build(&layers, conv_input);
        let unfused = FusionPlan::unfused(&graph);
        let fused = FusionPlan::default_fusion(&graph);
        assert!(unfused.is_valid_partition(&graph));
        assert!(fused.is_valid_partition(&graph));
        assert!(fused.len() <= unfused.len());
        // Fusion preserves total work and weights.
        let fused_macs: u64 = fused.groups().iter().map(|g| g.macs(&graph)).sum();
        assert_eq!(fused_macs, graph.total_macs());
        let fused_weights: u64 = fused.groups().iter().map(|g| g.weight_bytes(&graph)).sum();
        assert_eq!(fused_weights, graph.total_weight_bytes());
        // Hierarchical ops are never fused with other nodes by the default pass.
        for group in fused.groups() {
            if group.len() > 1 {
                for id in &group.nodes {
                    let node = graph.node(*id).unwrap();
                    assert!(
                        node.category() != flashmem_graph::OpCategory::Hierarchical,
                        "hierarchical node {} fused",
                        node.name
                    );
                }
            }
        }
    }
}

#[test]
fn splitting_groups_preserves_partitions() {
    let mut rng = SplitMix64::seed_from_u64(24);
    for _ in 0..CASES {
        let layers = layers(&mut rng, 2, 19);
        let split_seed = rng.gen_range_inclusive(0, 999) as usize;
        let graph = build(&layers, false);
        let mut plan = FusionPlan::default_fusion(&graph);
        // Attempt a split on a pseudo-random group; the plan must stay valid
        // whether or not the split is possible.
        let index = split_seed % plan.len().max(1);
        let group_len = plan.groups()[index].len();
        let _ = plan.split_group(index, split_seed % group_len.max(1));
        assert!(plan.is_valid_partition(&graph));
    }
}
