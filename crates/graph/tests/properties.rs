//! Property-based tests for the graph substrate: the builder always produces
//! valid graphs, weight chunking exactly covers every weight, and fusion plans
//! partition the node set for arbitrarily shaped MLP/conv stacks.

use proptest::prelude::*;

use flashmem_graph::{
    FusionPlan, GraphBuilder, OpKind, WeightInventory, DEFAULT_CHUNK_BYTES,
};

/// A random straight-line network description: alternating matmul / conv /
/// elementwise / norm layers.
#[derive(Debug, Clone)]
enum LayerSpec {
    Dense(u64),
    Conv { channels: u64, kernel: u64, stride: u64 },
    Activation,
    Norm,
    Softmax,
}

fn layer_strategy() -> impl Strategy<Value = LayerSpec> {
    prop_oneof![
        (64u64..2048).prop_map(LayerSpec::Dense),
        ((8u64..128), prop_oneof![Just(1u64), Just(3)], prop_oneof![Just(1u64), Just(2)])
            .prop_map(|(channels, kernel, stride)| LayerSpec::Conv { channels, kernel, stride }),
        Just(LayerSpec::Activation),
        Just(LayerSpec::Norm),
        Just(LayerSpec::Softmax),
    ]
}

fn build(layers: &[LayerSpec], conv_input: bool) -> flashmem_graph::Graph {
    let mut b = GraphBuilder::new("random");
    let mut x = if conv_input {
        b.input("image", &[8, 32, 32])
    } else {
        b.input("tokens", &[64, 256])
    };
    for (i, layer) in layers.iter().enumerate() {
        x = match layer {
            LayerSpec::Dense(n) => {
                // Dense layers need a 2D view; flatten conv outputs first.
                let dims = b.output_of(x).dims.clone();
                let flat = if dims.len() > 2 {
                    let elements: u64 = dims.iter().product();
                    b.reshape(&format!("flatten{i}"), x, &[1, elements])
                } else {
                    x
                };
                b.matmul(&format!("dense{i}"), flat, *n)
            }
            LayerSpec::Conv { channels, kernel, stride } => {
                let dims = b.output_of(x).dims.clone();
                if dims.len() == 3 {
                    b.conv2d(&format!("conv{i}"), x, *channels, *kernel, *stride)
                } else {
                    b.unary(&format!("relu{i}"), OpKind::ReLU, x)
                }
            }
            LayerSpec::Activation => b.unary(&format!("gelu{i}"), OpKind::GeLU, x),
            LayerSpec::Norm => b.norm(&format!("ln{i}"), OpKind::LayerNorm, x),
            LayerSpec::Softmax => b.softmax(&format!("softmax{i}"), x),
        };
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn builder_always_produces_valid_graphs(
        layers in proptest::collection::vec(layer_strategy(), 1..25),
        conv_input in any::<bool>(),
    ) {
        let graph = build(&layers, conv_input);
        prop_assert!(graph.validate().is_ok());
        prop_assert_eq!(graph.len(), graph.nodes().len());
        // Node ids equal their positions.
        for (idx, node) in graph.nodes().iter().enumerate() {
            prop_assert_eq!(node.id.0, idx);
        }
    }

    #[test]
    fn weight_chunking_exactly_covers_every_weight(
        layers in proptest::collection::vec(layer_strategy(), 1..25),
        chunk_kib in 1u64..2048,
    ) {
        let graph = build(&layers, false);
        let inventory = WeightInventory::with_chunk_size(&graph, chunk_kib * 1024);
        prop_assert_eq!(inventory.total_bytes(), graph.total_weight_bytes());
        for weight in inventory.weights() {
            let chunks = weight.chunks(inventory.chunk_bytes());
            let covered: u64 = chunks.iter().map(|c| c.bytes).sum();
            prop_assert_eq!(covered, weight.bytes);
            prop_assert_eq!(chunks.len() as u64, weight.chunk_count(inventory.chunk_bytes()));
            // No chunk exceeds the configured size.
            for chunk in &chunks {
                prop_assert!(chunk.bytes <= inventory.chunk_bytes());
            }
        }
        // The default chunk size constant stays sane.
        prop_assert!(DEFAULT_CHUNK_BYTES >= 4 * 1024);
    }

    #[test]
    fn fusion_plans_partition_every_graph(
        layers in proptest::collection::vec(layer_strategy(), 1..25),
        conv_input in any::<bool>(),
    ) {
        let graph = build(&layers, conv_input);
        let unfused = FusionPlan::unfused(&graph);
        let fused = FusionPlan::default_fusion(&graph);
        prop_assert!(unfused.is_valid_partition(&graph));
        prop_assert!(fused.is_valid_partition(&graph));
        prop_assert!(fused.len() <= unfused.len());
        // Fusion preserves total work and weights.
        let fused_macs: u64 = fused.groups().iter().map(|g| g.macs(&graph)).sum();
        prop_assert_eq!(fused_macs, graph.total_macs());
        let fused_weights: u64 = fused.groups().iter().map(|g| g.weight_bytes(&graph)).sum();
        prop_assert_eq!(fused_weights, graph.total_weight_bytes());
        // Hierarchical ops are never fused with other nodes by the default pass.
        for group in fused.groups() {
            if group.len() > 1 {
                for id in &group.nodes {
                    let node = graph.node(*id).unwrap();
                    prop_assert!(
                        node.category() != flashmem_graph::OpCategory::Hierarchical,
                        "hierarchical node {} fused", node.name
                    );
                }
            }
        }
    }

    #[test]
    fn splitting_groups_preserves_partitions(
        layers in proptest::collection::vec(layer_strategy(), 2..20),
        split_seed in 0usize..1000,
    ) {
        let graph = build(&layers, false);
        let mut plan = FusionPlan::default_fusion(&graph);
        // Attempt a split on a pseudo-random group; the plan must stay valid
        // whether or not the split is possible.
        let index = split_seed % plan.len().max(1);
        let group_len = plan.groups()[index].len();
        let _ = plan.split_group(index, split_seed % group_len.max(1));
        prop_assert!(plan.is_valid_partition(&graph));
    }
}
