//! Tensor descriptors.
//!
//! FlashMem never needs tensor *values* — every quantity in the paper's
//! evaluation (latency, memory, energy) is a function of tensor shapes, data
//! types and the resulting byte counts. A [`TensorDesc`] therefore carries
//! only shape and dtype.

use serde::{Deserialize, Serialize};

/// Element data type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit IEEE floating point (the paper's default GPU precision).
    #[default]
    F16,
    /// 32-bit IEEE floating point.
    F32,
}

impl DType {
    /// Size of one element in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
        }
    }

    /// Lowercase name (`"f16"` / `"f32"`).
    pub fn name(&self) -> &'static str {
        match self {
            DType::F16 => "f16",
            DType::F32 => "f32",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shape + dtype descriptor of a tensor (weight or activation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorDesc {
    /// Dimensions, outermost first. An empty shape denotes a scalar.
    pub dims: Vec<u64>,
    /// Element type.
    pub dtype: DType,
}

impl TensorDesc {
    /// Create a tensor descriptor.
    pub fn new(dims: &[u64], dtype: DType) -> Self {
        TensorDesc {
            dims: dims.to_vec(),
            dtype,
        }
    }

    /// FP16 tensor with the given dimensions.
    pub fn f16(dims: &[u64]) -> Self {
        Self::new(dims, DType::F16)
    }

    /// FP32 tensor with the given dimensions.
    pub fn f32(dims: &[u64]) -> Self {
        Self::new(dims, DType::F32)
    }

    /// Number of scalar elements (product of dimensions; 1 for a scalar).
    pub fn elements(&self) -> u64 {
        self.dims.iter().product::<u64>().max(1)
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.elements() * self.dtype.bytes()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// A copy of this descriptor converted to another dtype.
    pub fn cast(&self, dtype: DType) -> TensorDesc {
        TensorDesc {
            dims: self.dims.clone(),
            dtype,
        }
    }

    /// Interpret the tensor as a 2D matrix `(rows, cols)` by folding all
    /// leading dimensions into rows. Scalars become `(1, 1)`.
    pub fn as_matrix(&self) -> (u64, u64) {
        match self.dims.len() {
            0 => (1, 1),
            1 => (1, self.dims[0].max(1)),
            _ => {
                let cols = *self.dims.last().unwrap();
                let rows: u64 = self.dims[..self.dims.len() - 1].iter().product();
                (rows.max(1), cols.max(1))
            }
        }
    }
}

impl std::fmt::Display for TensorDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]{}", dims.join("x"), self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_elements() {
        let t = TensorDesc::f16(&[768, 3072]);
        assert_eq!(t.elements(), 768 * 3072);
        assert_eq!(t.bytes(), 768 * 3072 * 2);
        assert_eq!(t.rank(), 2);
        let t32 = t.cast(DType::F32);
        assert_eq!(t32.bytes(), 768 * 3072 * 4);
    }

    #[test]
    fn scalar_tensor() {
        let t = TensorDesc::f32(&[]);
        assert_eq!(t.elements(), 1);
        assert_eq!(t.bytes(), 4);
        assert_eq!(t.as_matrix(), (1, 1));
    }

    #[test]
    fn matrix_view_folds_leading_dims() {
        let t = TensorDesc::f16(&[4, 128, 768]);
        assert_eq!(t.as_matrix(), (4 * 128, 768));
        let v = TensorDesc::f16(&[100]);
        assert_eq!(v.as_matrix(), (1, 100));
    }

    #[test]
    fn display_format() {
        let t = TensorDesc::f16(&[2, 3]);
        assert_eq!(t.to_string(), "[2x3]f16");
    }

    #[test]
    fn dtype_default_is_f16() {
        assert_eq!(DType::default(), DType::F16);
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
    }
}
