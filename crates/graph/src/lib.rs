//! # flashmem-graph
//!
//! DNN computational-graph representation, operator taxonomy and the model zoo
//! used by the FlashMem (ASPLOS '26) reproduction.
//!
//! The paper treats a DNN as a DAG of low-level operators executed in a fixed
//! linear order (Section 3.1); each operator may own a weight tensor, and the
//! planner reasons about weight *sizes*, operator *categories* (Table 5) and
//! arithmetic *work* — never about numeric values. This crate provides exactly
//! that abstraction:
//!
//! * [`TensorDesc`]/[`DType`] — shape + dtype descriptors.
//! * [`OpKind`]/[`OpCategory`] — the operator taxonomy with the paper's
//!   elemental / reusable / hierarchical classification.
//! * [`Graph`]/[`Node`]/[`GraphBuilder`] — lowered graphs in execution order.
//! * [`WeightInventory`]/[`WeightChunk`] — weight extraction and chunking for
//!   the OPG formulation.
//! * [`FusionPlan`]/[`FusionGroup`] — kernel fusion groups and the split
//!   primitive used by adaptive fusion.
//! * [`ModelZoo`] — parametric generators for the 11 evaluated models of
//!   Table 6 (plus the Table 4 solver-stress models).
//!
//! ## Example
//!
//! ```rust
//! use flashmem_graph::{GraphBuilder, ModelZoo, OpKind};
//!
//! // Hand-built graph…
//! let mut b = GraphBuilder::new("mlp");
//! let x = b.input("x", &[128, 768]);
//! let h = b.matmul("fc1", x, 3072);
//! let h = b.unary("gelu", OpKind::GeLU, h);
//! b.matmul("fc2", h, 768);
//! let g = b.build();
//! assert!(g.validate().is_ok());
//!
//! // …or one of the paper's evaluation models.
//! let vit = ModelZoo::vit();
//! assert!(vit.graph().total_params() > 90_000_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod fusion;
pub mod graph;
pub mod models;
pub mod op;
pub mod tensor;
pub mod weights;

pub use builder::GraphBuilder;
pub use fusion::{FusionGroup, FusionPlan};
pub use graph::{Graph, GraphError, Node, NodeId};
pub use models::{ModelSpec, ModelTask, ModelZoo, PaperStats};
pub use op::{OpCategory, OpKind};
pub use tensor::{DType, TensorDesc};
pub use weights::{WeightChunk, WeightInfo, WeightInventory, DEFAULT_CHUNK_BYTES};
