//! Operator taxonomy.
//!
//! The paper classifies low-level operators into three categories (Table 5)
//! that determine how much concurrent weight streaming each can tolerate:
//! *elemental*, *reusable* and *hierarchical*. [`OpKind`] enumerates the
//! operators appearing in the evaluated models and maps each onto its
//! category, plus a few structural predicates used by fusion and layout
//! elimination (SmartMem's contribution, which FlashMem builds on).

use serde::{Deserialize, Serialize};

/// Operator category from Table 5, driving the load-capacity model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// Element-wise operators: memory-bound, tolerate large concurrent loads.
    Elemental,
    /// Operators with structured reuse (Conv, MatMul): compute-bound, high
    /// load capacity.
    Reusable,
    /// Multi-pass reduction operators (Softmax, LayerNorm): very low load
    /// capacity.
    Hierarchical,
}

impl OpCategory {
    /// Latency-increase budget granted to this category when additional
    /// weight data is streamed during the kernel (Section 4.2 / Figure 2):
    /// 0% for hierarchical operators, 20% for reusable operators and 300% for
    /// elemental operators (whose absolute baseline latency is tiny). The
    /// per-layer load capacity `C_ℓ` is the largest extra volume whose
    /// predicted slowdown stays within this budget.
    pub fn capacity_threshold(&self) -> f64 {
        match self {
            OpCategory::Elemental => 3.00,
            OpCategory::Reusable => 0.20,
            OpCategory::Hierarchical => 0.00,
        }
    }

    /// Lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            OpCategory::Elemental => "elemental",
            OpCategory::Reusable => "reusable",
            OpCategory::Hierarchical => "hierarchical",
        }
    }
}

impl std::fmt::Display for OpCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Low-level operator kinds produced by graph lowering.
///
/// The set covers the 11 evaluated models: GPT-Neo (S/1.3B/2.7B), ResNet-50,
/// SAM-2, ViT, DeepViT, SD-UNet, Whisper-Medium and DepthAnything (S/L).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpKind {
    // Reusable (structured-reuse) operators.
    MatMul,
    Conv2d,
    DepthwiseConv2d,
    ConvTranspose2d,
    Attention,
    Embedding,
    // Elemental operators.
    Add,
    Mul,
    ReLU,
    GeLU,
    SiLU,
    Sigmoid,
    Tanh,
    Scale,
    BiasAdd,
    RotaryEmbedding,
    Upsample,
    Pooling,
    // Hierarchical operators.
    Softmax,
    LayerNorm,
    GroupNorm,
    RMSNorm,
    BatchNorm,
    ArgMax,
    // Layout / data-movement operators (eliminated by SmartMem-style layout
    // planning; executed as copies when present).
    Reshape,
    Transpose,
    Concat,
    Split,
    Slice,
    Gather,
}

impl OpKind {
    /// The Table 5 category of this operator.
    pub fn category(&self) -> OpCategory {
        use OpKind::*;
        match self {
            MatMul | Conv2d | DepthwiseConv2d | ConvTranspose2d | Attention | Embedding => {
                OpCategory::Reusable
            }
            Add | Mul | ReLU | GeLU | SiLU | Sigmoid | Tanh | Scale | BiasAdd | RotaryEmbedding
            | Upsample | Pooling => OpCategory::Elemental,
            Softmax | LayerNorm | GroupNorm | RMSNorm | BatchNorm | ArgMax => {
                OpCategory::Hierarchical
            }
            Reshape | Transpose | Concat | Split | Slice | Gather => OpCategory::Elemental,
        }
    }

    /// True for pure layout-transformation operators (Reshape/Transpose/...),
    /// which SmartMem and FlashMem eliminate through 2.5D layout planning.
    pub fn is_layout_transform(&self) -> bool {
        matches!(
            self,
            OpKind::Reshape | OpKind::Transpose | OpKind::Concat | OpKind::Split | OpKind::Slice
        )
    }

    /// True for operators that typically carry a weight tensor.
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            OpKind::MatMul
                | OpKind::Conv2d
                | OpKind::DepthwiseConv2d
                | OpKind::ConvTranspose2d
                | OpKind::Embedding
                | OpKind::LayerNorm
                | OpKind::GroupNorm
                | OpKind::RMSNorm
                | OpKind::BatchNorm
                | OpKind::BiasAdd
        )
    }

    /// True for convolution-style operators whose weights need Winograd /
    /// im2col style transformation before execution — the paper calls these
    /// out as the reason SD-UNet and DepthAnything see smaller memory savings.
    pub fn needs_weight_transform(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d | OpKind::DepthwiseConv2d | OpKind::ConvTranspose2d
        )
    }

    /// Lowercase operator name used in kernel labels.
    pub fn name(&self) -> &'static str {
        use OpKind::*;
        match self {
            MatMul => "matmul",
            Conv2d => "conv2d",
            DepthwiseConv2d => "dwconv2d",
            ConvTranspose2d => "convtranspose2d",
            Attention => "attention",
            Embedding => "embedding",
            Add => "add",
            Mul => "mul",
            ReLU => "relu",
            GeLU => "gelu",
            SiLU => "silu",
            Sigmoid => "sigmoid",
            Tanh => "tanh",
            Scale => "scale",
            BiasAdd => "bias_add",
            RotaryEmbedding => "rope",
            Upsample => "upsample",
            Pooling => "pooling",
            Softmax => "softmax",
            LayerNorm => "layernorm",
            GroupNorm => "groupnorm",
            RMSNorm => "rmsnorm",
            BatchNorm => "batchnorm",
            ArgMax => "argmax",
            Reshape => "reshape",
            Transpose => "transpose",
            Concat => "concat",
            Split => "split",
            Slice => "slice",
            Gather => "gather",
        }
    }

    /// All operator kinds (useful for exhaustive property tests).
    pub fn all() -> Vec<OpKind> {
        use OpKind::*;
        vec![
            MatMul,
            Conv2d,
            DepthwiseConv2d,
            ConvTranspose2d,
            Attention,
            Embedding,
            Add,
            Mul,
            ReLU,
            GeLU,
            SiLU,
            Sigmoid,
            Tanh,
            Scale,
            BiasAdd,
            RotaryEmbedding,
            Upsample,
            Pooling,
            Softmax,
            LayerNorm,
            GroupNorm,
            RMSNorm,
            BatchNorm,
            ArgMax,
            Reshape,
            Transpose,
            Concat,
            Split,
            Slice,
            Gather,
        ]
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table_5_examples() {
        assert_eq!(OpKind::ReLU.category(), OpCategory::Elemental);
        assert_eq!(OpKind::Add.category(), OpCategory::Elemental);
        assert_eq!(OpKind::Conv2d.category(), OpCategory::Reusable);
        assert_eq!(OpKind::MatMul.category(), OpCategory::Reusable);
        assert_eq!(OpKind::LayerNorm.category(), OpCategory::Hierarchical);
        assert_eq!(OpKind::Softmax.category(), OpCategory::Hierarchical);
    }

    #[test]
    fn capacity_thresholds_match_section_4_2() {
        assert_eq!(OpCategory::Hierarchical.capacity_threshold(), 0.0);
        assert_eq!(OpCategory::Reusable.capacity_threshold(), 0.20);
        assert_eq!(OpCategory::Elemental.capacity_threshold(), 3.0);
    }

    #[test]
    fn layout_transforms_identified() {
        assert!(OpKind::Reshape.is_layout_transform());
        assert!(OpKind::Transpose.is_layout_transform());
        assert!(!OpKind::MatMul.is_layout_transform());
        assert!(!OpKind::Softmax.is_layout_transform());
    }

    #[test]
    fn weighted_ops_include_matmul_and_norms() {
        assert!(OpKind::MatMul.is_weighted());
        assert!(OpKind::Conv2d.is_weighted());
        assert!(OpKind::LayerNorm.is_weighted());
        assert!(!OpKind::ReLU.is_weighted());
        assert!(!OpKind::Softmax.is_weighted());
    }

    #[test]
    fn conv_needs_weight_transform_matmul_does_not() {
        assert!(OpKind::Conv2d.needs_weight_transform());
        assert!(!OpKind::MatMul.needs_weight_transform());
    }

    #[test]
    fn every_kind_has_a_name_and_category() {
        for k in OpKind::all() {
            assert!(!k.name().is_empty());
            let _ = k.category();
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = OpKind::all().iter().map(|k| k.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
