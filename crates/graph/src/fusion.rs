//! Operator fusion groups.
//!
//! Frameworks fuse adjacent operators into single kernels to cut launch
//! overhead and intermediate tensors. FlashMem's *adaptive fusion*
//! (Section 4.3) additionally reasons about how fusion destroys schedulable
//! load capacity — fusing `k` operators leaves only `min(C_1..C_k)` instead of
//! `ΣC_i` — and selectively splits fusions back apart. This module provides
//! the graph-level representation: fusion groups over consecutive nodes, a
//! default fusion pass, and the split primitive the adaptive policy uses.

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};
use crate::op::{OpCategory, OpKind};

/// A fused kernel: one or more consecutive nodes executed as a single GPU
/// dispatch. Groups never reorder nodes; they partition the execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionGroup {
    /// Member nodes in execution order.
    pub nodes: Vec<NodeId>,
}

impl FusionGroup {
    /// A group containing a single node.
    pub fn singleton(id: NodeId) -> Self {
        FusionGroup { nodes: vec![id] }
    }

    /// First member.
    pub fn first(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last member.
    pub fn last(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of fused operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the group has no operators (never produced by the fusion
    /// passes, present for `len`/`is_empty` API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if the group has exactly one operator.
    pub fn is_singleton(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The dominant category of the fused kernel: hierarchical if any member
    /// is hierarchical, else reusable if any member is reusable, else
    /// elemental. This mirrors how the fused kernel behaves for load-capacity
    /// purposes (the least tolerant member constrains the kernel).
    pub fn dominant_category(&self, graph: &Graph) -> OpCategory {
        let mut has_reusable = false;
        for id in &self.nodes {
            match graph.node(*id).map(|n| n.category()) {
                Some(OpCategory::Hierarchical) => return OpCategory::Hierarchical,
                Some(OpCategory::Reusable) => has_reusable = true,
                _ => {}
            }
        }
        if has_reusable {
            OpCategory::Reusable
        } else {
            OpCategory::Elemental
        }
    }

    /// Total MACs of the fused kernel.
    pub fn macs(&self, graph: &Graph) -> u64 {
        self.nodes
            .iter()
            .filter_map(|id| graph.node(*id))
            .map(|n| n.macs)
            .sum()
    }

    /// Total weight bytes consumed by the fused kernel.
    pub fn weight_bytes(&self, graph: &Graph) -> u64 {
        self.nodes
            .iter()
            .filter_map(|id| graph.node(*id))
            .map(|n| n.weight_bytes())
            .sum()
    }

    /// Split the group after `split_after` members, producing two groups.
    /// Returns `None` if the split index would leave either side empty.
    pub fn split_at(&self, split_after: usize) -> Option<(FusionGroup, FusionGroup)> {
        if split_after == 0 || split_after >= self.nodes.len() {
            return None;
        }
        Some((
            FusionGroup {
                nodes: self.nodes[..split_after].to_vec(),
            },
            FusionGroup {
                nodes: self.nodes[split_after..].to_vec(),
            },
        ))
    }
}

/// A partition of the whole graph into fusion groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionPlan {
    groups: Vec<FusionGroup>,
}

impl FusionPlan {
    /// Build a plan from explicit groups.
    ///
    /// The caller is responsible for the partition invariant when the plan is
    /// meant to cover a whole graph; [`is_valid_partition`](Self::is_valid_partition)
    /// checks it. Capacity profilers also use single-group "plans" to price an
    /// individual fused kernel in isolation.
    pub fn from_groups(groups: Vec<FusionGroup>) -> Self {
        FusionPlan { groups }
    }

    /// The trivial plan: every node is its own kernel.
    pub fn unfused(graph: &Graph) -> Self {
        FusionPlan {
            groups: graph
                .nodes()
                .iter()
                .map(|n| FusionGroup::singleton(n.id))
                .collect(),
        }
    }

    /// The default greedy fusion used by DNN frameworks (and by SmartMem): a
    /// reusable anchor operator absorbs the immediately following chain of
    /// elemental operators that consume its output (e.g. `MatMul+Add+GeLU`),
    /// and chains of adjacent elemental operators collapse together.
    /// Hierarchical operators are never fused into an anchor.
    pub fn default_fusion(graph: &Graph) -> Self {
        let nodes = graph.nodes();
        let mut groups: Vec<FusionGroup> = Vec::new();
        let mut current: Vec<NodeId> = Vec::new();

        let flush = |current: &mut Vec<NodeId>, groups: &mut Vec<FusionGroup>| {
            if !current.is_empty() {
                groups.push(FusionGroup {
                    nodes: std::mem::take(current),
                });
            }
        };

        for node in nodes {
            let cat = node.category();
            match cat {
                OpCategory::Hierarchical => {
                    flush(&mut current, &mut groups);
                    groups.push(FusionGroup::singleton(node.id));
                }
                OpCategory::Reusable => {
                    flush(&mut current, &mut groups);
                    current.push(node.id);
                }
                OpCategory::Elemental => {
                    // Only absorb the elemental op if it directly consumes the
                    // previous member of the open group (straight-line chain).
                    let chains = current
                        .last()
                        .map(|prev| node.inputs.contains(prev))
                        .unwrap_or(false);
                    if chains && current.len() < 6 {
                        current.push(node.id);
                    } else {
                        flush(&mut current, &mut groups);
                        current.push(node.id);
                    }
                }
            }
        }
        flush(&mut current, &mut groups);
        FusionPlan { groups }
    }

    /// The fusion groups in execution order.
    pub fn groups(&self) -> &[FusionGroup] {
        &self.groups
    }

    /// Number of kernels after fusion.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if the plan is empty (empty graph).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Replace group `index` with the two halves produced by splitting it
    /// after `split_after` members. Returns false (leaving the plan intact)
    /// if the split is not possible.
    pub fn split_group(&mut self, index: usize, split_after: usize) -> bool {
        let Some(group) = self.groups.get(index) else {
            return false;
        };
        let Some((a, b)) = group.split_at(split_after) else {
            return false;
        };
        self.groups.splice(index..=index, [a, b]);
        true
    }

    /// Validate that the plan is a partition of the graph's nodes preserving
    /// execution order.
    pub fn is_valid_partition(&self, graph: &Graph) -> bool {
        let mut expected = 0usize;
        for g in &self.groups {
            for id in &g.nodes {
                if id.0 != expected {
                    return false;
                }
                expected += 1;
            }
        }
        expected == graph.len()
    }
}

/// Convenience: does fusing `kinds` into one kernel look like the
/// "Reusable + Elemental" pattern the paper's splitting rule targets?
pub fn is_reusable_elemental_fusion(kinds: &[OpKind]) -> bool {
    kinds.iter().any(|k| k.category() == OpCategory::Reusable)
        && kinds.iter().any(|k| k.category() == OpCategory::Elemental)
        && !kinds
            .iter()
            .any(|k| k.category() == OpCategory::Hierarchical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn ffn_graph() -> Graph {
        let mut b = GraphBuilder::new("ffn");
        let x = b.input("x", &[128, 768]);
        let m1 = b.matmul("fc1", x, 3072);
        let a1 = b.bias_add("bias1", m1);
        let g1 = b.unary("gelu", OpKind::GeLU, a1);
        let m2 = b.matmul("fc2", g1, 768);
        let a2 = b.bias_add("bias2", m2);
        let r = b.binary("residual", OpKind::Add, a2, x);
        b.norm("ln", OpKind::LayerNorm, r);
        b.build()
    }

    #[test]
    fn unfused_plan_is_one_group_per_node() {
        let g = ffn_graph();
        let plan = FusionPlan::unfused(&g);
        assert_eq!(plan.len(), g.len());
        assert!(plan.is_valid_partition(&g));
    }

    #[test]
    fn default_fusion_groups_matmul_with_following_elementals() {
        let g = ffn_graph();
        let plan = FusionPlan::default_fusion(&g);
        assert!(plan.is_valid_partition(&g));
        // Fewer kernels than nodes, and the layernorm stays alone.
        assert!(plan.len() < g.len());
        let last = plan.groups().last().unwrap();
        assert!(last.is_singleton());
        assert_eq!(last.dominant_category(&g), OpCategory::Hierarchical);
        // Find the group containing fc1: it should also contain bias1 + gelu.
        let fc1_group = plan
            .groups()
            .iter()
            .find(|gr| gr.nodes.contains(&NodeId(1)))
            .unwrap();
        assert!(fc1_group.len() >= 3);
        assert_eq!(fc1_group.dominant_category(&g), OpCategory::Reusable);
    }

    #[test]
    fn split_group_preserves_partition() {
        let g = ffn_graph();
        let mut plan = FusionPlan::default_fusion(&g);
        let before = plan.len();
        let idx = plan
            .groups()
            .iter()
            .position(|gr| gr.len() >= 3)
            .expect("a fused group exists");
        assert!(plan.split_group(idx, 1));
        assert_eq!(plan.len(), before + 1);
        assert!(plan.is_valid_partition(&g));
    }

    #[test]
    fn invalid_splits_are_rejected() {
        let g = ffn_graph();
        let mut plan = FusionPlan::unfused(&g);
        assert!(!plan.split_group(0, 0));
        assert!(!plan.split_group(0, 1));
        assert!(!plan.split_group(999, 1));
        assert!(plan.is_valid_partition(&g));
    }

    #[test]
    fn group_aggregates() {
        let g = ffn_graph();
        let plan = FusionPlan::default_fusion(&g);
        let total_macs: u64 = plan.groups().iter().map(|gr| gr.macs(&g)).sum();
        assert_eq!(total_macs, g.total_macs());
        let total_weights: u64 = plan.groups().iter().map(|gr| gr.weight_bytes(&g)).sum();
        assert_eq!(total_weights, g.total_weight_bytes());
    }

    #[test]
    fn reusable_elemental_pattern_detector() {
        assert!(is_reusable_elemental_fusion(&[
            OpKind::MatMul,
            OpKind::BiasAdd,
            OpKind::GeLU
        ]));
        assert!(!is_reusable_elemental_fusion(&[OpKind::MatMul]));
        assert!(!is_reusable_elemental_fusion(&[
            OpKind::MatMul,
            OpKind::LayerNorm
        ]));
    }

    #[test]
    fn dominant_category_hierarchy() {
        let g = ffn_graph();
        let group = FusionGroup {
            nodes: vec![NodeId(6), NodeId(7)], // residual add + layernorm
        };
        assert_eq!(group.dominant_category(&g), OpCategory::Hierarchical);
    }
}
