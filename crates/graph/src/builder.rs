//! Incremental graph construction.
//!
//! [`GraphBuilder`] provides typed helpers for the operators that dominate the
//! evaluated models (matrix multiplication, convolution, attention, norms,
//! element-wise ops). Each helper derives the output shape, the weight tensor
//! (if any) and the MAC count from the input shapes, so model definitions in
//! [`crate::models`] read like framework code rather than bookkeeping.

use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::tensor::{DType, TensorDesc};

/// Builder for [`Graph`]s in execution order.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    dtype: DType,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Start a new graph named `name`, with FP16 tensors by default.
    pub fn new(name: &str) -> Self {
        GraphBuilder {
            name: name.to_string(),
            dtype: DType::F16,
            nodes: Vec::new(),
        }
    }

    /// Switch the element type used for subsequently created tensors.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// The element dtype currently in effect.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finish and return the graph.
    pub fn build(self) -> Graph {
        Graph::from_nodes(&self.name, self.nodes)
    }

    /// Add a raw node. Prefer the typed helpers; this exists for tests and
    /// exotic operators.
    pub fn push_raw(
        &mut self,
        name: &str,
        kind: OpKind,
        inputs: &[NodeId],
        output: TensorDesc,
        weight: Option<TensorDesc>,
        macs: u64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        // Guarantee unique names by suffixing duplicates with the node index.
        let unique_name = if self.nodes.iter().any(|n| n.name == name) {
            format!("{name}__{}", id.0)
        } else {
            name.to_string()
        };
        self.nodes.push(Node {
            id,
            name: unique_name,
            kind,
            inputs: inputs.to_vec(),
            output,
            weight,
            macs,
        });
        id
    }

    /// Shape of a node's output (panics on a stale id — builder-internal ids
    /// are always valid by construction).
    pub fn output_of(&self, id: NodeId) -> &TensorDesc {
        &self.nodes[id.0].output
    }

    // ---------------------------------------------------------------------
    // Inputs and weight-free plumbing
    // ---------------------------------------------------------------------

    /// Add a graph input placeholder with the given shape.
    pub fn input(&mut self, name: &str, dims: &[u64]) -> NodeId {
        let t = TensorDesc::new(dims, self.dtype);
        self.push_raw(name, OpKind::Reshape, &[], t, None, 0)
    }

    /// Token / patch embedding lookup: output `[tokens, hidden]`, weight
    /// `[vocab, hidden]`.
    pub fn embedding(&mut self, name: &str, input: NodeId, vocab: u64, hidden: u64) -> NodeId {
        let tokens = self.output_of(input).as_matrix().0;
        let out = TensorDesc::new(&[tokens, hidden], self.dtype);
        let weight = TensorDesc::new(&[vocab, hidden], self.dtype);
        // A lookup reads one row per token: negligible MACs.
        self.push_raw(name, OpKind::Embedding, &[input], out, Some(weight), 0)
    }

    // ---------------------------------------------------------------------
    // Reusable operators
    // ---------------------------------------------------------------------

    /// Dense layer / matrix multiplication: input `[*, k]` × weight `[k, n]`.
    pub fn matmul(&mut self, name: &str, input: NodeId, n: u64) -> NodeId {
        let (rows, k) = self.output_of(input).as_matrix();
        let out = TensorDesc::new(&[rows, n], self.dtype);
        let weight = TensorDesc::new(&[k, n], self.dtype);
        let macs = rows * k * n;
        self.push_raw(name, OpKind::MatMul, &[input], out, Some(weight), macs)
    }

    /// Matrix multiplication between two activation tensors (no weight), such
    /// as the `QK^T` and `PV` products inside attention.
    pub fn matmul_act(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let (m, k) = self.output_of(a).as_matrix();
        let (_, n) = self.output_of(b).as_matrix();
        let out = TensorDesc::new(&[m, n], self.dtype);
        let macs = m * k * n;
        self.push_raw(name, OpKind::MatMul, &[a, b], out, None, macs)
    }

    /// 2D convolution over an `[c_in, h, w]` activation.
    ///
    /// `stride` divides the spatial dimensions; padding is assumed "same".
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        &mut self,
        name: &str,
        input: NodeId,
        c_out: u64,
        kernel: u64,
        stride: u64,
    ) -> NodeId {
        let dims = &self.output_of(input).dims;
        let (c_in, h, w) = conv_dims(dims);
        let oh = (h / stride).max(1);
        let ow = (w / stride).max(1);
        let out = TensorDesc::new(&[c_out, oh, ow], self.dtype);
        let weight = TensorDesc::new(&[c_out, c_in, kernel, kernel], self.dtype);
        let macs = c_out * c_in * kernel * kernel * oh * ow;
        self.push_raw(name, OpKind::Conv2d, &[input], out, Some(weight), macs)
    }

    /// Depthwise 2D convolution.
    pub fn depthwise_conv2d(
        &mut self,
        name: &str,
        input: NodeId,
        kernel: u64,
        stride: u64,
    ) -> NodeId {
        let dims = &self.output_of(input).dims;
        let (c, h, w) = conv_dims(dims);
        let oh = (h / stride).max(1);
        let ow = (w / stride).max(1);
        let out = TensorDesc::new(&[c, oh, ow], self.dtype);
        let weight = TensorDesc::new(&[c, 1, kernel, kernel], self.dtype);
        let macs = c * kernel * kernel * oh * ow;
        self.push_raw(
            name,
            OpKind::DepthwiseConv2d,
            &[input],
            out,
            Some(weight),
            macs,
        )
    }

    /// Transposed convolution (upsampling decoder blocks).
    pub fn conv_transpose2d(
        &mut self,
        name: &str,
        input: NodeId,
        c_out: u64,
        kernel: u64,
        stride: u64,
    ) -> NodeId {
        let dims = &self.output_of(input).dims;
        let (c_in, h, w) = conv_dims(dims);
        let oh = h * stride;
        let ow = w * stride;
        let out = TensorDesc::new(&[c_out, oh, ow], self.dtype);
        let weight = TensorDesc::new(&[c_in, c_out, kernel, kernel], self.dtype);
        let macs = c_out * c_in * kernel * kernel * oh * ow;
        self.push_raw(
            name,
            OpKind::ConvTranspose2d,
            &[input],
            out,
            Some(weight),
            macs,
        )
    }

    // ---------------------------------------------------------------------
    // Elemental operators
    // ---------------------------------------------------------------------

    /// Element-wise binary op (Add/Mul) between two activations of the same
    /// shape.
    pub fn binary(&mut self, name: &str, kind: OpKind, a: NodeId, b: NodeId) -> NodeId {
        debug_assert!(matches!(kind, OpKind::Add | OpKind::Mul));
        let out = self.output_of(a).clone();
        let macs = out.elements();
        self.push_raw(name, kind, &[a, b], out, None, macs)
    }

    /// Element-wise unary op (activations, scaling, rotary embedding, ...).
    pub fn unary(&mut self, name: &str, kind: OpKind, input: NodeId) -> NodeId {
        let out = self.output_of(input).clone();
        let macs = out.elements();
        self.push_raw(name, kind, &[input], out, None, macs)
    }

    /// Bias addition with a learned per-channel bias vector.
    pub fn bias_add(&mut self, name: &str, input: NodeId) -> NodeId {
        let out = self.output_of(input).clone();
        let channels = *out.dims.last().unwrap_or(&1);
        let weight = TensorDesc::new(&[channels], self.dtype);
        let macs = out.elements();
        self.push_raw(name, OpKind::BiasAdd, &[input], out, Some(weight), macs)
    }

    /// Global or windowed pooling; halves spatial dims when `stride > 1`.
    pub fn pooling(&mut self, name: &str, input: NodeId, stride: u64) -> NodeId {
        let dims = &self.output_of(input).dims;
        let (c, h, w) = conv_dims(dims);
        let out = TensorDesc::new(&[c, (h / stride).max(1), (w / stride).max(1)], self.dtype);
        let macs = c * h * w;
        self.push_raw(name, OpKind::Pooling, &[input], out, None, macs)
    }

    /// Nearest-neighbour upsampling by `factor`.
    pub fn upsample(&mut self, name: &str, input: NodeId, factor: u64) -> NodeId {
        let dims = &self.output_of(input).dims;
        let (c, h, w) = conv_dims(dims);
        let out = TensorDesc::new(&[c, h * factor, w * factor], self.dtype);
        let macs = out.elements();
        self.push_raw(name, OpKind::Upsample, &[input], out, None, macs)
    }

    // ---------------------------------------------------------------------
    // Hierarchical operators
    // ---------------------------------------------------------------------

    /// Normalisation layer with learned scale/shift (LayerNorm, GroupNorm,
    /// RMSNorm, BatchNorm).
    pub fn norm(&mut self, name: &str, kind: OpKind, input: NodeId) -> NodeId {
        let out = self.output_of(input).clone();
        let channels = *out.dims.last().unwrap_or(&1);
        let weight = TensorDesc::new(&[2, channels], self.dtype);
        let macs = out.elements() * 4; // mean, var, normalise, affine
        self.push_raw(name, kind, &[input], out, Some(weight), macs)
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, name: &str, input: NodeId) -> NodeId {
        let out = self.output_of(input).clone();
        let macs = out.elements() * 3;
        self.push_raw(name, OpKind::Softmax, &[input], out, None, macs)
    }

    // ---------------------------------------------------------------------
    // Layout operators
    // ---------------------------------------------------------------------

    /// Reshape to a new shape with the same number of elements.
    pub fn reshape(&mut self, name: &str, input: NodeId, dims: &[u64]) -> NodeId {
        let out = TensorDesc::new(dims, self.dtype);
        self.push_raw(name, OpKind::Reshape, &[input], out, None, 0)
    }

    /// Transpose (swap the two trailing dimensions).
    pub fn transpose(&mut self, name: &str, input: NodeId) -> NodeId {
        let mut dims = self.output_of(input).dims.clone();
        let n = dims.len();
        if n >= 2 {
            dims.swap(n - 1, n - 2);
        }
        let out = TensorDesc::new(&dims, self.dtype);
        self.push_raw(name, OpKind::Transpose, &[input], out, None, 0)
    }

    /// Concatenate two activations along the channel (first) dimension.
    pub fn concat(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let da = self.output_of(a).dims.clone();
        let db = self.output_of(b).dims.clone();
        let mut dims = da.clone();
        if !dims.is_empty() && da.len() == db.len() {
            dims[0] = da[0] + db[0];
        }
        let out = TensorDesc::new(&dims, self.dtype);
        self.push_raw(name, OpKind::Concat, &[a, b], out, None, 0)
    }
}

/// Interpret a dims slice as `[channels, height, width]`, tolerating lower
/// ranks (vectors become `[c, 1, 1]`).
fn conv_dims(dims: &[u64]) -> (u64, u64, u64) {
    match dims.len() {
        0 => (1, 1, 1),
        1 => (dims[0], 1, 1),
        2 => (dims[0], dims[1], 1),
        _ => (dims[0], dims[1], dims[2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shapes_weights_and_macs() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[128, 768]);
        let y = b.matmul("proj", x, 3072);
        assert_eq!(b.output_of(y).dims, vec![128, 3072]);
        let g = b.build();
        let node = &g.nodes()[y.0];
        assert_eq!(node.weight.as_ref().unwrap().dims, vec![768, 3072]);
        assert_eq!(node.macs, 128 * 768 * 3072);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn conv_halves_spatial_dims_with_stride_2() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[3, 224, 224]);
        let y = b.conv2d("stem", x, 64, 7, 2);
        assert_eq!(b.output_of(y).dims, vec![64, 112, 112]);
        let g = b.build();
        assert_eq!(
            g.nodes()[y.0].weight.as_ref().unwrap().dims,
            vec![64, 3, 7, 7]
        );
        assert!(g.nodes()[y.0].macs > 0);
    }

    #[test]
    fn duplicate_names_are_made_unique() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 4]);
        b.unary("relu", OpKind::ReLU, x);
        b.unary("relu", OpKind::ReLU, x);
        let g = b.build();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn attention_style_activation_matmul() {
        let mut b = GraphBuilder::new("t");
        let q = b.input("q", &[128, 64]);
        let k = b.input("k", &[128, 64]);
        let kt = b.transpose("k_t", k);
        let scores = b.matmul_act("qk", q, kt);
        assert_eq!(b.output_of(scores).dims, vec![128, 128]);
        let g = b.build();
        assert!(g.nodes()[scores.0].weight.is_none());
        assert_eq!(g.nodes()[scores.0].macs, 128 * 64 * 128);
    }

    #[test]
    fn norm_and_softmax_are_hierarchical() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[128, 768]);
        let ln = b.norm("ln", OpKind::LayerNorm, x);
        let sm = b.softmax("sm", x);
        let g = b.build();
        assert_eq!(
            g.nodes()[ln.0].category(),
            crate::op::OpCategory::Hierarchical
        );
        assert_eq!(
            g.nodes()[sm.0].category(),
            crate::op::OpCategory::Hierarchical
        );
    }

    #[test]
    fn upsample_pooling_and_concat_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[64, 32, 32]);
        let up = b.upsample("up", x, 2);
        assert_eq!(b.output_of(up).dims, vec![64, 64, 64]);
        let down = b.pooling("pool", x, 2);
        assert_eq!(b.output_of(down).dims, vec![64, 16, 16]);
        let cat = b.concat("cat", x, x);
        assert_eq!(b.output_of(cat).dims, vec![128, 32, 32]);
    }

    #[test]
    fn embedding_weight_is_vocab_by_hidden() {
        let mut b = GraphBuilder::new("t");
        let tok = b.input("tokens", &[256, 1]);
        let e = b.embedding("wte", tok, 50257, 768);
        let g = b.build();
        assert_eq!(
            g.nodes()[e.0].weight.as_ref().unwrap().dims,
            vec![50257, 768]
        );
        assert_eq!(g.nodes()[e.0].output.dims, vec![256, 768]);
    }

    #[test]
    fn builder_len_tracks_nodes() {
        let mut b = GraphBuilder::new("t");
        assert!(b.is_empty());
        let x = b.input("x", &[2, 2]);
        b.unary("r", OpKind::ReLU, x);
        assert_eq!(b.len(), 2);
    }
}
