//! Weight inventory and chunking.
//!
//! FlashMem's OPG formulation (Section 3.1.2) splits every weight tensor into
//! fixed-size chunks of `S` bytes; the solver then decides, per chunk, at
//! which layer it is transformed from unified into texture memory. This module
//! extracts the weight inventory from a graph and performs the chunking (the
//! "Weights Slicer" box of Figure 3).

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};

/// Default chunk size `S`: 1 MiB, small enough for fine-grained scheduling,
/// large enough to keep per-chunk overhead negligible.
pub const DEFAULT_CHUNK_BYTES: u64 = 1 << 20;

/// One weight tensor owned by a node, as seen by the planner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightInfo {
    /// The node that consumes this weight (the paper's `i_w`).
    pub consumer: NodeId,
    /// Weight name (derived from the node name).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Whether the weight needs a convolution-style transform (Winograd /
    /// im2col), which temporarily inflates memory and cannot be overlapped.
    pub needs_transform: bool,
}

impl WeightInfo {
    /// Number of chunks of size `chunk_bytes` this weight splits into
    /// (the paper's `T(w)`); at least 1 for non-empty weights.
    pub fn chunk_count(&self, chunk_bytes: u64) -> u64 {
        if self.bytes == 0 {
            0
        } else {
            self.bytes.div_ceil(chunk_bytes.max(1))
        }
    }

    /// Split the weight into concrete chunks with byte offsets.
    pub fn chunks(&self, chunk_bytes: u64) -> Vec<WeightChunk> {
        let n = self.chunk_count(chunk_bytes);
        (0..n)
            .map(|i| {
                let start = i * chunk_bytes;
                let end = ((i + 1) * chunk_bytes).min(self.bytes);
                WeightChunk {
                    weight: self.consumer,
                    index: i,
                    start_offset: start,
                    bytes: end - start,
                }
            })
            .collect()
    }
}

/// A contiguous slice of one weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightChunk {
    /// The node owning the parent weight.
    pub weight: NodeId,
    /// Chunk index within the weight.
    pub index: u64,
    /// Byte offset of the chunk within the weight.
    pub start_offset: u64,
    /// Chunk size in bytes (the last chunk may be short).
    pub bytes: u64,
}

/// The full weight inventory of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightInventory {
    weights: Vec<WeightInfo>,
    chunk_bytes: u64,
}

impl WeightInventory {
    /// Extract the inventory from a graph using the default chunk size.
    pub fn from_graph(graph: &Graph) -> Self {
        Self::with_chunk_size(graph, DEFAULT_CHUNK_BYTES)
    }

    /// Extract the inventory with an explicit chunk size `S`.
    pub fn with_chunk_size(graph: &Graph, chunk_bytes: u64) -> Self {
        let weights = graph
            .nodes()
            .iter()
            .filter(|n| n.weight_bytes() > 0)
            .map(|n| WeightInfo {
                consumer: n.id,
                name: format!("{}.weight", n.name),
                bytes: n.weight_bytes(),
                needs_transform: n.kind.needs_weight_transform(),
            })
            .collect();
        WeightInventory {
            weights,
            chunk_bytes: chunk_bytes.max(1),
        }
    }

    /// The configured chunk size `S` in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// All weights, ordered by consumer layer.
    pub fn weights(&self) -> &[WeightInfo] {
        &self.weights
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the model has no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total bytes across all weights.
    pub fn total_bytes(&self) -> u64 {
        self.weights.iter().map(|w| w.bytes).sum()
    }

    /// Total number of chunks across all weights.
    pub fn total_chunks(&self) -> u64 {
        self.weights
            .iter()
            .map(|w| w.chunk_count(self.chunk_bytes))
            .sum()
    }

    /// The weight consumed by `node`, if any.
    pub fn weight_for(&self, node: NodeId) -> Option<&WeightInfo> {
        self.weights.iter().find(|w| w.consumer == node)
    }

    /// Weights consumed strictly after layer `layer` (candidates for
    /// streaming while earlier layers execute).
    pub fn weights_after(&self, layer: NodeId) -> impl Iterator<Item = &WeightInfo> {
        self.weights.iter().filter(move |w| w.consumer > layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::OpKind;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[128, 768]);
        let m1 = b.matmul("fc1", x, 3072);
        let g1 = b.unary("gelu", OpKind::GeLU, m1);
        let m2 = b.matmul("fc2", g1, 768);
        b.norm("ln", OpKind::LayerNorm, m2);
        b.build()
    }

    #[test]
    fn inventory_lists_only_weighted_nodes() {
        let g = graph();
        let inv = WeightInventory::from_graph(&g);
        // fc1, fc2, ln carry weights; input and gelu do not.
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.total_bytes(), g.total_weight_bytes());
        assert!(inv.weight_for(NodeId(2)).is_none());
        assert!(inv.weight_for(NodeId(1)).is_some());
    }

    #[test]
    fn chunk_count_and_sizes_cover_weight_exactly() {
        let g = graph();
        let inv = WeightInventory::with_chunk_size(&g, 1 << 20);
        for w in inv.weights() {
            let chunks = w.chunks(inv.chunk_bytes());
            assert_eq!(chunks.len() as u64, w.chunk_count(inv.chunk_bytes()));
            let total: u64 = chunks.iter().map(|c| c.bytes).sum();
            assert_eq!(total, w.bytes, "chunks must cover {}", w.name);
            // Offsets are contiguous.
            let mut expected = 0;
            for c in &chunks {
                assert_eq!(c.start_offset, expected);
                expected += c.bytes;
            }
        }
    }

    #[test]
    fn zero_sized_chunk_request_clamped() {
        let g = graph();
        let inv = WeightInventory::with_chunk_size(&g, 0);
        assert_eq!(inv.chunk_bytes(), 1);
    }

    #[test]
    fn weights_after_filters_by_layer() {
        let g = graph();
        let inv = WeightInventory::from_graph(&g);
        let after: Vec<_> = inv.weights_after(NodeId(1)).collect();
        // fc2 (node 3) and ln (node 4).
        assert_eq!(after.len(), 2);
        assert!(after.iter().all(|w| w.consumer > NodeId(1)));
    }

    #[test]
    fn conv_weights_flagged_for_transform() {
        let mut b = GraphBuilder::new("conv");
        let x = b.input("x", &[3, 64, 64]);
        b.conv2d("conv", x, 16, 3, 1);
        let g = b.build();
        let inv = WeightInventory::from_graph(&g);
        assert!(inv.weights()[0].needs_transform);
    }

    #[test]
    fn total_chunks_matches_sum() {
        let g = graph();
        let inv = WeightInventory::with_chunk_size(&g, 123_456);
        let sum: u64 = inv
            .weights()
            .iter()
            .map(|w| w.chunk_count(inv.chunk_bytes()))
            .sum();
        assert_eq!(inv.total_chunks(), sum);
        assert!(inv.total_chunks() > 0);
    }
}
