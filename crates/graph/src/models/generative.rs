//! Generative models: the Stable-Diffusion UNet.

use crate::builder::GraphBuilder;
use crate::graph::NodeId;
use crate::op::OpKind;

use super::blocks::{unet_attention_block, unet_res_block};
use super::{ModelSpec, ModelTask, PaperStats};

/// Stable-Diffusion UNet ("SD-UNet": 860 M params, 78 GMACs): the classic
/// four-level UNet with residual conv blocks and spatial transformer blocks
/// (self + cross attention over a 77-token text context), operating on a
/// 32×32 latent.
pub fn sd_unet() -> ModelSpec {
    let context_dim = 768u64;
    let channels = [320u64, 640, 1280, 1280];
    let latent_side = 32u64;

    let mut b = GraphBuilder::new("StableDiffusion-UNet");
    let latent = b.input("latent", &[4, latent_side, latent_side]);
    let mut x = b.conv2d("conv_in", latent, channels[0], 3, 1);

    // ---------------- Down path ----------------
    // Record skip connections (one per res block, plus the stage input) the
    // way the real UNet forwards them to the up path.
    let mut skips: Vec<NodeId> = vec![x];
    for (level, &c) in channels.iter().enumerate() {
        let with_attention = level < 3;
        for block in 0..2 {
            x = unet_res_block(&mut b, x, c, &format!("down.{level}.res{block}"));
            if with_attention {
                x = unet_attention_block(
                    &mut b,
                    x,
                    context_dim,
                    &format!("down.{level}.attn{block}"),
                );
            }
            skips.push(x);
        }
        if level < channels.len() - 1 {
            // Downsample conv (stride 2).
            x = b.conv2d(&format!("down.{level}.downsample"), x, c, 3, 2);
            skips.push(x);
        }
    }

    // ---------------- Middle ----------------
    let c_mid = *channels.last().unwrap();
    x = unet_res_block(&mut b, x, c_mid, "mid.res0");
    x = unet_attention_block(&mut b, x, context_dim, "mid.attn");
    x = unet_res_block(&mut b, x, c_mid, "mid.res1");

    // ---------------- Up path ----------------
    for (level, &c) in channels.iter().enumerate().rev() {
        let with_attention = level < 3;
        for block in 0..3 {
            let skip = skips.pop().unwrap_or(x);
            let cat = b.concat(&format!("up.{level}.cat{block}"), x, skip);
            x = unet_res_block(&mut b, cat, c, &format!("up.{level}.res{block}"));
            if with_attention {
                x = unet_attention_block(
                    &mut b,
                    x,
                    context_dim,
                    &format!("up.{level}.attn{block}"),
                );
            }
        }
        if level > 0 {
            x = b.upsample(&format!("up.{level}.upsample"), x, 2);
            x = b.conv2d(&format!("up.{level}.upconv"), x, channels[level - 1], 3, 1);
        }
    }

    let out = b.norm("out.gn", OpKind::GroupNorm, x);
    let out = b.unary("out.silu", OpKind::SiLU, out);
    b.conv2d("conv_out", out, 4, 3, 1);

    ModelSpec::new(
        "StableDiffusion-UNet",
        "SD-UNet",
        ModelTask::ImageGeneration,
        PaperStats {
            params_m: 860.0,
            macs_g: 78.0,
            layers: 1_271,
        },
        b.build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_unet_validates() {
        sd_unet().graph().validate().unwrap();
    }

    #[test]
    fn sd_unet_is_convolution_heavy() {
        let m = sd_unet();
        let convs = m
            .graph()
            .nodes()
            .iter()
            .filter(|n| n.kind.needs_weight_transform())
            .count();
        assert!(convs > 50, "only {convs} convolutions");
    }

    #[test]
    fn sd_unet_close_to_860m_params() {
        let m = sd_unet();
        assert!(m.params_deviation() < 0.35, "{}", m);
    }

    #[test]
    fn sd_unet_has_cross_attention_blocks() {
        let m = sd_unet();
        assert!(m.graph().nodes().iter().any(|n| n.name.contains(".cross.")));
    }

    #[test]
    fn up_path_mirrors_down_path_spatially() {
        // The final conv output must return to the 32x32 latent resolution.
        let m = sd_unet();
        let last = m.graph().nodes().last().unwrap();
        assert_eq!(last.output.dims, vec![4, 32, 32]);
    }
}
