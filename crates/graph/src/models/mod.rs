//! The model zoo: parametric generators for the 11 models of Table 6.
//!
//! Real checkpoints (GPT-Neo, SD-UNet, Whisper, SAM-2, …) are not available in
//! this environment and are not needed: every quantity in the paper's
//! evaluation depends only on graph structure, operator types and tensor
//! sizes. Each generator therefore reproduces a model's *lowered operator
//! graph* — operator mix, weight shapes, parameter count and MAC count — using
//! the published architecture hyper-parameters, tuned so the aggregate
//! statistics land close to Table 6.
//!
//! Differences in lowering granularity (how many low-level nodes a framework
//! emits per architectural block) mean our "# Layers" is the right order of
//! magnitude but not identical to the paper's column; parameter and MAC counts
//! are matched much more closely and are what the memory/latency models
//! actually consume.

mod blocks;
mod generative;
mod language;
mod vision;

pub use blocks::{transformer_decoder_block, transformer_encoder_block, TransformerBlockConfig};

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// The application task a model serves (Table 6's "Model Task" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelTask {
    /// Natural-language processing (GPT-Neo family).
    Nlp,
    /// Image classification (ResNet-50, ViT, DeepViT).
    ImageClassification,
    /// Image segmentation (SAM-2).
    ImageSegmentation,
    /// Image generation (Stable-Diffusion UNet).
    ImageGeneration,
    /// Speech recognition (Whisper).
    SpeechRecognition,
    /// Video / depth segmentation (DepthAnything).
    VideoSegmentation,
}

impl ModelTask {
    /// Human readable task name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelTask::Nlp => "NLP",
            ModelTask::ImageClassification => "Image Classification",
            ModelTask::ImageSegmentation => "Image Segmentation",
            ModelTask::ImageGeneration => "Image Generation",
            ModelTask::SpeechRecognition => "Speech Recognition",
            ModelTask::VideoSegmentation => "Video Segmentation",
        }
    }
}

impl std::fmt::Display for ModelTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reference statistics from Table 6 of the paper, kept alongside each
/// generated model so harnesses can print paper-vs-generated comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStats {
    /// "# Params (M)".
    pub params_m: f64,
    /// "# MACs (G)".
    pub macs_g: f64,
    /// "# Layers" (low-level operator nodes after lowering).
    pub layers: u64,
}

/// Prefill/decode-step split for an autoregressive (generative) model.
///
/// The owning [`ModelSpec`]'s graph is the *prefill* pass over the full
/// prompt (or, for Whisper, the audio encoder plus the prompt-length decoder
/// pass). `step` is the single-token decode graph replayed once per generated
/// token, so per-invocation peak memory is charged per step instead of for
/// one dense fixed-length pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeSpec {
    /// Single-token decode-step graph, compiled once and replayed per token.
    pub step: ModelSpec,
    /// KV-cache bytes appended per context token (K+V across all decoder
    /// layers, fp16).
    pub kv_bytes_per_token: u64,
    /// Maximum context length (prompt plus generated tokens).
    pub max_context: u64,
}

/// A generated evaluation model: metadata plus the lowered graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Full model name, e.g. `"GPTNeo-1.3B"`.
    pub name: String,
    /// Abbreviation used in the paper's tables, e.g. `"GPTN-1.3B"`.
    pub abbr: String,
    /// Application task.
    pub task: ModelTask,
    /// Table 6 reference statistics.
    pub paper: PaperStats,
    graph: Graph,
    decode: Option<Box<DecodeSpec>>,
}

impl ModelSpec {
    pub(crate) fn new(
        name: &str,
        abbr: &str,
        task: ModelTask,
        paper: PaperStats,
        graph: Graph,
    ) -> Self {
        ModelSpec {
            name: name.to_string(),
            abbr: abbr.to_string(),
            task,
            paper,
            graph,
            decode: None,
        }
    }

    pub(crate) fn with_decode(mut self, decode: DecodeSpec) -> Self {
        self.decode = Some(Box::new(decode));
        self
    }

    /// Prefill/decode-step split, present for autoregressive models
    /// (GPT-Neo family, Whisper). `None` for one-shot models.
    pub fn decode(&self) -> Option<&DecodeSpec> {
        self.decode.as_deref()
    }

    /// The lowered operator graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume the spec and return the graph (convenient for examples).
    pub fn build(self) -> Graph {
        self.graph
    }

    /// Generated parameter count in millions.
    pub fn params_m(&self) -> f64 {
        self.graph.total_params() as f64 / 1e6
    }

    /// Generated MAC count in billions.
    pub fn macs_g(&self) -> f64 {
        self.graph.total_macs() as f64 / 1e9
    }

    /// Generated lowered-layer count.
    pub fn layers(&self) -> u64 {
        self.graph.len() as u64
    }

    /// Relative deviation of the generated parameter count from Table 6.
    pub fn params_deviation(&self) -> f64 {
        (self.params_m() - self.paper.params_m).abs() / self.paper.params_m
    }

    /// Relative deviation of the generated MAC count from Table 6.
    pub fn macs_deviation(&self) -> f64 {
        (self.macs_g() - self.paper.macs_g).abs() / self.paper.macs_g
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: {:.1} M params (paper {:.1}), {:.1} GMACs (paper {:.1}), {} layers (paper {})",
            self.name,
            self.abbr,
            self.params_m(),
            self.paper.params_m,
            self.macs_g(),
            self.paper.macs_g,
            self.layers(),
            self.paper.layers
        )
    }
}

/// Static constructors for the 11 evaluated models plus the solver-scaling
/// models of Table 4 (ViT-8B, Llama2-13B/70B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelZoo;

impl ModelZoo {
    /// GPT-Neo 125M-class ("GPTN-S" in the paper).
    pub fn gptneo_small() -> ModelSpec {
        language::gptneo_small()
    }

    /// GPT-Neo 1.3B ("GPTN-1.3B").
    pub fn gptneo_1_3b() -> ModelSpec {
        language::gptneo_1_3b()
    }

    /// GPT-Neo 2.7B ("GPTN-2.7B") — the model no baseline framework can run.
    pub fn gptneo_2_7b() -> ModelSpec {
        language::gptneo_2_7b()
    }

    /// ResNet-50.
    pub fn resnet50() -> ModelSpec {
        vision::resnet50()
    }

    /// Segment-Anything-2 image encoder + mask decoder ("SAM-2").
    pub fn sam2() -> ModelSpec {
        vision::sam2()
    }

    /// ViT (image classification).
    pub fn vit() -> ModelSpec {
        vision::vit()
    }

    /// DeepViT (deeper ViT variant).
    pub fn deepvit() -> ModelSpec {
        vision::deepvit()
    }

    /// Stable-Diffusion UNet ("SD-UNet").
    pub fn sd_unet() -> ModelSpec {
        generative::sd_unet()
    }

    /// Whisper-Medium ("Whisp-M").
    pub fn whisper_medium() -> ModelSpec {
        language::whisper_medium()
    }

    /// DepthAnything-Small ("DepA-S").
    pub fn depth_anything_small() -> ModelSpec {
        vision::depth_anything_small()
    }

    /// DepthAnything-Large ("DepA-L").
    pub fn depth_anything_large() -> ModelSpec {
        vision::depth_anything_large()
    }

    /// The 11 evaluated models of Table 6, in table order.
    pub fn all_evaluated() -> Vec<ModelSpec> {
        vec![
            Self::gptneo_small(),
            Self::gptneo_1_3b(),
            Self::gptneo_2_7b(),
            Self::resnet50(),
            Self::sam2(),
            Self::vit(),
            Self::deepvit(),
            Self::sd_unet(),
            Self::whisper_medium(),
            Self::depth_anything_small(),
            Self::depth_anything_large(),
        ]
    }

    /// Look up an evaluated model by its paper abbreviation (e.g.
    /// `"GPTN-1.3B"`). Returns `None` for unknown abbreviations.
    pub fn by_abbr(abbr: &str) -> Option<ModelSpec> {
        Self::all_evaluated().into_iter().find(|m| m.abbr == abbr)
    }

    /// ViT-8B — used only to stress the LC-OPG solver (Table 4).
    pub fn vit_8b() -> ModelSpec {
        vision::vit_8b()
    }

    /// Llama-2 13B — solver stress model (Table 4).
    pub fn llama2_13b() -> ModelSpec {
        language::llama2_13b()
    }

    /// Llama-2 70B — solver stress model (Table 4).
    pub fn llama2_70b() -> ModelSpec {
        language::llama2_70b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_evaluated_has_eleven_models_with_unique_abbrs() {
        let all = ModelZoo::all_evaluated();
        assert_eq!(all.len(), 11);
        let mut abbrs: Vec<&str> = all.iter().map(|m| m.abbr.as_str()).collect();
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), 11);
    }

    #[test]
    fn every_model_graph_validates() {
        for m in ModelZoo::all_evaluated() {
            m.graph().validate().unwrap_or_else(|e| {
                panic!("{} failed validation: {e}", m.name);
            });
        }
    }

    #[test]
    fn parameter_counts_close_to_table_6() {
        for m in ModelZoo::all_evaluated() {
            assert!(
                m.params_deviation() < 0.35,
                "{}: generated {:.1} M vs paper {:.1} M",
                m.name,
                m.params_m(),
                m.paper.params_m
            );
        }
    }

    #[test]
    fn mac_counts_close_to_table_6() {
        for m in ModelZoo::all_evaluated() {
            assert!(
                m.macs_deviation() < 0.45,
                "{}: generated {:.1} G vs paper {:.1} G",
                m.name,
                m.macs_g(),
                m.paper.macs_g
            );
        }
    }

    #[test]
    fn layer_counts_same_order_of_magnitude() {
        for m in ModelZoo::all_evaluated() {
            let ratio = m.layers() as f64 / m.paper.layers as f64;
            assert!(
                (0.2..=3.0).contains(&ratio),
                "{}: {} layers vs paper {}",
                m.name,
                m.layers(),
                m.paper.layers
            );
        }
    }

    #[test]
    fn model_size_ordering_preserved() {
        // GPTN-2.7B > GPTN-1.3B > SD-UNet > Whisper > GPTN-S in weight bytes.
        let p = |m: ModelSpec| m.graph().total_weight_bytes();
        assert!(p(ModelZoo::gptneo_2_7b()) > p(ModelZoo::gptneo_1_3b()));
        assert!(p(ModelZoo::gptneo_1_3b()) > p(ModelZoo::sd_unet()));
        assert!(p(ModelZoo::sd_unet()) > p(ModelZoo::whisper_medium()));
        assert!(p(ModelZoo::whisper_medium()) > p(ModelZoo::gptneo_small()));
        assert!(p(ModelZoo::resnet50()) < p(ModelZoo::vit()));
    }

    #[test]
    fn decode_specs_only_on_autoregressive_models() {
        let with_decode: Vec<String> = ModelZoo::all_evaluated()
            .into_iter()
            .filter(|m| m.decode().is_some())
            .map(|m| m.abbr.clone())
            .collect();
        assert_eq!(
            with_decode,
            vec!["GPTN-S", "GPTN-1.3B", "GPTN-2.7B", "Whisp-M"]
        );
    }

    #[test]
    fn by_abbr_round_trips() {
        for m in ModelZoo::all_evaluated() {
            let found = ModelZoo::by_abbr(&m.abbr).expect("abbr lookup");
            assert_eq!(found.name, m.name);
        }
        assert!(ModelZoo::by_abbr("does-not-exist").is_none());
    }

    #[test]
    fn solver_stress_models_are_larger_than_evaluated_ones() {
        assert!(
            ModelZoo::llama2_70b().graph().total_params()
                > ModelZoo::gptneo_2_7b().graph().total_params()
        );
        assert!(
            ModelZoo::llama2_13b().graph().total_params()
                > ModelZoo::gptneo_2_7b().graph().total_params()
        );
        assert!(
            ModelZoo::vit_8b().graph().total_params()
                > ModelZoo::gptneo_2_7b().graph().total_params()
        );
    }

    #[test]
    fn convolution_models_contain_transform_needing_weights() {
        for m in [
            ModelZoo::resnet50(),
            ModelZoo::sd_unet(),
            ModelZoo::depth_anything_small(),
        ] {
            let has_conv = m
                .graph()
                .nodes()
                .iter()
                .any(|n| n.kind.needs_weight_transform());
            assert!(has_conv, "{} should contain convolutions", m.name);
        }
    }

    #[test]
    fn transformer_models_have_hierarchical_ops() {
        for m in [
            ModelZoo::gptneo_small(),
            ModelZoo::vit(),
            ModelZoo::whisper_medium(),
        ] {
            let hist = m.graph().category_histogram();
            assert!(hist[2].1 > 0, "{} should contain softmax/layernorm", m.name);
        }
    }
}
