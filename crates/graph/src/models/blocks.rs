//! Reusable architectural blocks shared by the model generators.

use crate::builder::GraphBuilder;
use crate::graph::NodeId;
use crate::op::OpKind;

/// Hyper-parameters of one transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerBlockConfig {
    /// Hidden size `d_model`.
    pub hidden: u64,
    /// Number of attention heads.
    pub heads: u64,
    /// Feed-forward inner dimension.
    pub ffn: u64,
    /// Sequence length (tokens) flowing through the block.
    pub seq: u64,
    /// Use rotary position embeddings on Q/K (GPT-NeoX / Llama style).
    pub rotary: bool,
}

impl TransformerBlockConfig {
    /// A GPT-style block with `ffn = 4 × hidden`.
    pub fn gpt(hidden: u64, heads: u64, seq: u64) -> Self {
        TransformerBlockConfig {
            hidden,
            heads,
            ffn: hidden * 4,
            seq,
            rotary: false,
        }
    }
}

/// Append a pre-norm transformer **encoder** block (self-attention + MLP) to
/// the builder, lowered to the operator granularity mobile frameworks emit
/// (separate Q/K/V projections, reshapes/transposes for the head split,
/// explicit softmax, bias adds and residual additions).
///
/// Returns the block's output node.
pub fn transformer_encoder_block(
    b: &mut GraphBuilder,
    input: NodeId,
    cfg: &TransformerBlockConfig,
    prefix: &str,
) -> NodeId {
    let h = cfg.hidden;
    let head_dim = (h / cfg.heads).max(1);

    // --- Self-attention ---------------------------------------------------
    let ln1 = b.norm(&format!("{prefix}.ln1"), OpKind::LayerNorm, input);
    let q = b.matmul(&format!("{prefix}.attn.q"), ln1, h);
    let q = b.bias_add(&format!("{prefix}.attn.q_bias"), q);
    let k = b.matmul(&format!("{prefix}.attn.k"), ln1, h);
    let k = b.bias_add(&format!("{prefix}.attn.k_bias"), k);
    let v = b.matmul(&format!("{prefix}.attn.v"), ln1, h);
    let v = b.bias_add(&format!("{prefix}.attn.v_bias"), v);

    let (q, k) = if cfg.rotary {
        (
            b.unary(&format!("{prefix}.attn.q_rope"), OpKind::RotaryEmbedding, q),
            b.unary(&format!("{prefix}.attn.k_rope"), OpKind::RotaryEmbedding, k),
        )
    } else {
        (q, k)
    };

    // Head split: [seq, h] -> [heads, seq, head_dim] (reshape + transpose).
    let q = b.reshape(
        &format!("{prefix}.attn.q_split"),
        q,
        &[cfg.heads, cfg.seq, head_dim],
    );
    let k = b.reshape(
        &format!("{prefix}.attn.k_split"),
        k,
        &[cfg.heads, cfg.seq, head_dim],
    );
    let v = b.reshape(
        &format!("{prefix}.attn.v_split"),
        v,
        &[cfg.heads, cfg.seq, head_dim],
    );
    let kt = b.transpose(&format!("{prefix}.attn.k_t"), k);

    // Scores and context.
    let scores = b.matmul_act(&format!("{prefix}.attn.qk"), q, kt);
    let scores = b.unary(&format!("{prefix}.attn.scale"), OpKind::Scale, scores);
    let probs = b.softmax(&format!("{prefix}.attn.softmax"), scores);
    let context = b.matmul_act(&format!("{prefix}.attn.pv"), probs, v);
    let context = b.reshape(&format!("{prefix}.attn.merge"), context, &[cfg.seq, h]);

    let attn_out = b.matmul(&format!("{prefix}.attn.out"), context, h);
    let attn_out = b.bias_add(&format!("{prefix}.attn.out_bias"), attn_out);
    let attn_res = b.binary(
        &format!("{prefix}.attn.residual"),
        OpKind::Add,
        attn_out,
        input,
    );

    // --- MLP ---------------------------------------------------------------
    let ln2 = b.norm(&format!("{prefix}.ln2"), OpKind::LayerNorm, attn_res);
    let fc1 = b.matmul(&format!("{prefix}.mlp.fc1"), ln2, cfg.ffn);
    let fc1 = b.bias_add(&format!("{prefix}.mlp.fc1_bias"), fc1);
    let act = b.unary(&format!("{prefix}.mlp.gelu"), OpKind::GeLU, fc1);
    let fc2 = b.matmul(&format!("{prefix}.mlp.fc2"), act, h);
    let fc2 = b.bias_add(&format!("{prefix}.mlp.fc2_bias"), fc2);
    b.binary(
        &format!("{prefix}.mlp.residual"),
        OpKind::Add,
        fc2,
        attn_res,
    )
}

/// Append a transformer **decoder** block: self-attention, cross-attention
/// over `encoder_out`, then the MLP. Used by Whisper's decoder.
pub fn transformer_decoder_block(
    b: &mut GraphBuilder,
    input: NodeId,
    encoder_out: NodeId,
    cfg: &TransformerBlockConfig,
    prefix: &str,
) -> NodeId {
    // Self-attention + MLP reuse the encoder block lowering.
    let self_out = transformer_encoder_block(b, input, cfg, &format!("{prefix}.self"));

    // Cross attention: queries from the decoder stream, keys/values from the
    // encoder output.
    let h = cfg.hidden;
    let ln = b.norm(&format!("{prefix}.cross.ln"), OpKind::LayerNorm, self_out);
    let q = b.matmul(&format!("{prefix}.cross.q"), ln, h);
    let k = b.matmul(&format!("{prefix}.cross.k"), encoder_out, h);
    let v = b.matmul(&format!("{prefix}.cross.v"), encoder_out, h);
    let kt = b.transpose(&format!("{prefix}.cross.k_t"), k);
    let scores = b.matmul_act(&format!("{prefix}.cross.qk"), q, kt);
    let probs = b.softmax(&format!("{prefix}.cross.softmax"), scores);
    let ctx = b.matmul_act(&format!("{prefix}.cross.pv"), probs, v);
    let out = b.matmul(&format!("{prefix}.cross.out"), ctx, h);
    b.binary(
        &format!("{prefix}.cross.residual"),
        OpKind::Add,
        out,
        self_out,
    )
}

/// Append a ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand + skip).
pub fn bottleneck_block(
    b: &mut GraphBuilder,
    input: NodeId,
    mid_channels: u64,
    out_channels: u64,
    stride: u64,
    prefix: &str,
) -> NodeId {
    let c1 = b.conv2d(&format!("{prefix}.conv1"), input, mid_channels, 1, 1);
    let n1 = b.norm(&format!("{prefix}.bn1"), OpKind::BatchNorm, c1);
    let r1 = b.unary(&format!("{prefix}.relu1"), OpKind::ReLU, n1);
    let c2 = b.conv2d(&format!("{prefix}.conv2"), r1, mid_channels, 3, stride);
    let n2 = b.norm(&format!("{prefix}.bn2"), OpKind::BatchNorm, c2);
    let r2 = b.unary(&format!("{prefix}.relu2"), OpKind::ReLU, n2);
    let c3 = b.conv2d(&format!("{prefix}.conv3"), r2, out_channels, 1, 1);
    let n3 = b.norm(&format!("{prefix}.bn3"), OpKind::BatchNorm, c3);
    // Projection shortcut when shape changes, identity otherwise.
    let shortcut = if stride != 1 {
        let sc = b.conv2d(
            &format!("{prefix}.downsample"),
            input,
            out_channels,
            1,
            stride,
        );
        b.norm(&format!("{prefix}.downsample_bn"), OpKind::BatchNorm, sc)
    } else {
        // Channel change without spatial change still needs a projection.
        let needs_proj = b.output_of(input).dims[0] != out_channels;
        if needs_proj {
            let sc = b.conv2d(&format!("{prefix}.proj"), input, out_channels, 1, 1);
            b.norm(&format!("{prefix}.proj_bn"), OpKind::BatchNorm, sc)
        } else {
            input
        }
    };
    let sum = b.binary(&format!("{prefix}.add"), OpKind::Add, n3, shortcut);
    b.unary(&format!("{prefix}.relu_out"), OpKind::ReLU, sum)
}

/// Append a UNet residual conv block (two 3x3 convs with group norms and SiLU).
pub fn unet_res_block(
    b: &mut GraphBuilder,
    input: NodeId,
    out_channels: u64,
    prefix: &str,
) -> NodeId {
    let n1 = b.norm(&format!("{prefix}.gn1"), OpKind::GroupNorm, input);
    let a1 = b.unary(&format!("{prefix}.silu1"), OpKind::SiLU, n1);
    let c1 = b.conv2d(&format!("{prefix}.conv1"), a1, out_channels, 3, 1);
    let n2 = b.norm(&format!("{prefix}.gn2"), OpKind::GroupNorm, c1);
    let a2 = b.unary(&format!("{prefix}.silu2"), OpKind::SiLU, n2);
    let c2 = b.conv2d(&format!("{prefix}.conv2"), a2, out_channels, 3, 1);
    let shortcut = if b.output_of(input).dims[0] != out_channels {
        b.conv2d(&format!("{prefix}.skip"), input, out_channels, 1, 1)
    } else {
        input
    };
    b.binary(&format!("{prefix}.add"), OpKind::Add, c2, shortcut)
}

/// Append a UNet spatial-transformer block: flatten the feature map to tokens,
/// run self-attention + cross-attention over a text context, and an MLP.
pub fn unet_attention_block(
    b: &mut GraphBuilder,
    input: NodeId,
    context_dim: u64,
    prefix: &str,
) -> NodeId {
    let dims = b.output_of(input).dims.clone();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let tokens = h * w;
    let x = b.reshape(&format!("{prefix}.to_tokens"), input, &[tokens, c]);

    let cfg = TransformerBlockConfig {
        hidden: c,
        heads: (c / 64).max(1),
        ffn: c * 4,
        seq: tokens,
        rotary: false,
    };
    let sa = transformer_encoder_block(b, x, &cfg, &format!("{prefix}.self_attn"));

    // Cross-attention over the text-conditioning context (77 tokens).
    let ln = b.norm(&format!("{prefix}.cross.ln"), OpKind::LayerNorm, sa);
    let q = b.matmul(&format!("{prefix}.cross.q"), ln, c);
    // K/V projections from the context dimension; model the context as a
    // weight-bearing projection of size context_dim × c applied to 77 tokens.
    let kv_src = b.reshape(&format!("{prefix}.cross.ctx"), ln, &[77, context_dim]);
    let k = b.matmul(&format!("{prefix}.cross.k"), kv_src, c);
    let v = b.matmul(&format!("{prefix}.cross.v"), kv_src, c);
    let kt = b.transpose(&format!("{prefix}.cross.k_t"), k);
    let scores = b.matmul_act(&format!("{prefix}.cross.qk"), q, kt);
    let probs = b.softmax(&format!("{prefix}.cross.softmax"), scores);
    let ctx = b.matmul_act(&format!("{prefix}.cross.pv"), probs, v);
    let out = b.matmul(&format!("{prefix}.cross.out"), ctx, c);
    let res = b.binary(&format!("{prefix}.cross.residual"), OpKind::Add, out, sa);

    b.reshape(&format!("{prefix}.to_spatial"), res, &[c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn build_one_block() -> Graph {
        let mut b = GraphBuilder::new("block");
        let x = b.input("x", &[128, 768]);
        let cfg = TransformerBlockConfig::gpt(768, 12, 128);
        transformer_encoder_block(&mut b, x, &cfg, "block0");
        b.build()
    }

    #[test]
    fn encoder_block_validates_and_has_expected_params() {
        let g = build_one_block();
        g.validate().unwrap();
        // 12 * hidden^2 plus small norm/bias weights.
        let expected = 12.0 * 768.0 * 768.0;
        let actual = g.total_params() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "params {actual} vs {expected}"
        );
    }

    #[test]
    fn encoder_block_macs_scale_with_sequence() {
        let make = |seq: u64| {
            let mut b = GraphBuilder::new("block");
            let x = b.input("x", &[seq, 768]);
            let cfg = TransformerBlockConfig::gpt(768, 12, seq);
            transformer_encoder_block(&mut b, x, &cfg, "b");
            b.build().total_macs()
        };
        let m128 = make(128);
        let m256 = make(256);
        assert!(m256 > m128 && (m256 as f64) < 2.6 * m128 as f64);
    }

    #[test]
    fn decoder_block_has_more_ops_than_encoder_block() {
        let mut b = GraphBuilder::new("dec");
        let x = b.input("x", &[64, 512]);
        let enc = b.input("enc", &[300, 512]);
        let cfg = TransformerBlockConfig::gpt(512, 8, 64);
        transformer_decoder_block(&mut b, x, enc, &cfg, "d0");
        let dec_len = b.len();

        let mut b2 = GraphBuilder::new("enc");
        let x2 = b2.input("x", &[64, 512]);
        transformer_encoder_block(&mut b2, x2, &cfg, "e0");
        assert!(dec_len > b2.len());
    }

    #[test]
    fn bottleneck_preserves_spatial_dims_when_stride_1() {
        let mut b = GraphBuilder::new("res");
        let x = b.input("x", &[256, 56, 56]);
        let out = bottleneck_block(&mut b, x, 64, 256, 1, "b0");
        assert_eq!(b.output_of(out).dims, vec![256, 56, 56]);
        b.build().validate().unwrap();
    }

    #[test]
    fn bottleneck_downsamples_with_stride_2() {
        let mut b = GraphBuilder::new("res");
        let x = b.input("x", &[256, 56, 56]);
        let out = bottleneck_block(&mut b, x, 128, 512, 2, "b0");
        assert_eq!(b.output_of(out).dims, vec![512, 28, 28]);
    }

    #[test]
    fn unet_blocks_validate() {
        let mut b = GraphBuilder::new("unet");
        let x = b.input("x", &[320, 32, 32]);
        let r = unet_res_block(&mut b, x, 320, "res0");
        let a = unet_attention_block(&mut b, r, 768, "attn0");
        assert_eq!(b.output_of(a).dims, vec![320, 32, 32]);
        b.build().validate().unwrap();
    }

    #[test]
    fn rotary_adds_rope_nodes() {
        let mut b = GraphBuilder::new("rope");
        let x = b.input("x", &[64, 512]);
        let cfg = TransformerBlockConfig {
            hidden: 512,
            heads: 8,
            ffn: 2048,
            seq: 64,
            rotary: true,
        };
        transformer_encoder_block(&mut b, x, &cfg, "b");
        let g = b.build();
        assert!(g.nodes().iter().any(|n| n.kind == OpKind::RotaryEmbedding));
    }
}
