//! Vision models: ResNet-50, ViT, DeepViT, SAM-2, DepthAnything and the
//! ViT-8B solver-stress model.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::op::OpKind;

use super::blocks::{bottleneck_block, transformer_encoder_block, TransformerBlockConfig};
use super::{ModelSpec, ModelTask, PaperStats};

/// Build a plain ViT-style encoder: patch-embedding convolution, `layers`
/// transformer blocks over `tokens` tokens of width `hidden`, a final norm
/// and a classification head of `num_classes` outputs (0 = no head).
fn build_vit_encoder(
    name: &str,
    hidden: u64,
    heads: u64,
    ffn: u64,
    layers: u64,
    tokens: u64,
    num_classes: u64,
) -> Graph {
    let mut b = GraphBuilder::new(name);
    // Patch embedding: 3x224x224 image, 16x16 patches (shape chosen so the
    // token count matches `tokens`).
    let side = (tokens as f64).sqrt().ceil() as u64;
    let image = b.input("image", &[3, side * 16, side * 16]);
    let patches = b.conv2d("patch_embed", image, hidden, 16, 16);
    let mut x = b.reshape("to_tokens", patches, &[tokens, hidden]);

    let cfg = TransformerBlockConfig {
        hidden,
        heads,
        ffn,
        seq: tokens,
        rotary: false,
    };
    for layer in 0..layers {
        x = transformer_encoder_block(&mut b, x, &cfg, &format!("blocks.{layer}"));
    }
    let x = b.norm("ln_f", OpKind::LayerNorm, x);
    if num_classes > 0 {
        // Global average pool over tokens, then the classification head.
        let pooled = b.reshape("pool", x, &[1, hidden]);
        b.matmul("head", pooled, num_classes);
    } else {
        // Keep a terminal op so downstream consumers see a defined output.
        b.unary("features", OpKind::Scale, x);
    }
    b.build()
}

/// Append a small DPT-style convolutional decoder head (DepthAnything) or mask
/// decoder (SAM-2) on top of a ViT feature map.
fn append_conv_decoder(
    b: &mut GraphBuilder,
    features: crate::graph::NodeId,
    hidden: u64,
    side: u64,
) {
    let spatial = b.reshape("head.to_spatial", features, &[hidden, side, side]);
    let c1 = b.conv2d("head.conv1", spatial, hidden / 2, 3, 1);
    let r1 = b.unary("head.relu1", OpKind::ReLU, c1);
    let u1 = b.upsample("head.up1", r1, 2);
    let c2 = b.conv2d("head.conv2", u1, hidden / 4, 3, 1);
    let r2 = b.unary("head.relu2", OpKind::ReLU, c2);
    let u2 = b.upsample("head.up2", r2, 2);
    let c3 = b.conv2d("head.conv3", u2, 64, 3, 1);
    let r3 = b.unary("head.relu3", OpKind::ReLU, c3);
    b.conv2d("head.out", r3, 1, 1, 1);
}

/// ViT ("ViT": 103 M params, 21 GMACs).
pub fn vit() -> ModelSpec {
    let graph = build_vit_encoder("ViT", 768, 12, 3_072, 14, 197, 1_000);
    ModelSpec::new(
        "ViT",
        "ViT",
        ModelTask::ImageClassification,
        PaperStats {
            params_m: 103.0,
            macs_g: 21.0,
            layers: 819,
        },
        graph,
    )
}

/// DeepViT ("DeepViT": 204 M params, 42 GMACs).
pub fn deepvit() -> ModelSpec {
    let graph = build_vit_encoder("DeepViT", 768, 12, 3_072, 29, 197, 1_000);
    ModelSpec::new(
        "DeepViT",
        "DeepViT",
        ModelTask::ImageClassification,
        PaperStats {
            params_m: 204.0,
            macs_g: 42.0,
            layers: 1_395,
        },
        graph,
    )
}

/// ViT-8B: solver-stress model for Table 4.
pub fn vit_8b() -> ModelSpec {
    let graph = build_vit_encoder("ViT-8B", 4_096, 32, 16_384, 40, 197, 1_000);
    ModelSpec::new(
        "ViT-8B",
        "ViT-8B",
        ModelTask::ImageClassification,
        PaperStats {
            params_m: 8_000.0,
            macs_g: 1_600.0,
            layers: 3_000,
        },
        graph,
    )
}

/// ResNet-50 (25.6 M params, 4.1 GMACs).
pub fn resnet50() -> ModelSpec {
    let mut b = GraphBuilder::new("ResNet50");
    let image = b.input("image", &[3, 224, 224]);
    let stem = b.conv2d("stem.conv", image, 64, 7, 2);
    let stem = b.norm("stem.bn", OpKind::BatchNorm, stem);
    let stem = b.unary("stem.relu", OpKind::ReLU, stem);
    let mut x = b.pooling("stem.maxpool", stem, 2);

    // Stage configuration: (mid channels, out channels, blocks, first stride).
    let stages = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (stage_idx, (mid, out, blocks, stride)) in stages.iter().enumerate() {
        for block in 0..*blocks {
            let s = if block == 0 { *stride } else { 1 };
            x = bottleneck_block(
                &mut b,
                x,
                *mid,
                *out,
                s,
                &format!("layer{}.{}", stage_idx + 1, block),
            );
        }
    }
    let pooled = b.pooling("avgpool", x, 7);
    let flat = b.reshape("flatten", pooled, &[1, 2048]);
    b.matmul("fc", flat, 1_000);

    ModelSpec::new(
        "ResNet50",
        "ResNet",
        ModelTask::ImageClassification,
        PaperStats {
            params_m: 25.6,
            macs_g: 4.1,
            layers: 141,
        },
        b.build(),
    )
}

/// Segment-Anything-2 ("SAM-2": 215 M params, 218 GMACs): a heavy hierarchical
/// image encoder over many tokens plus a light convolutional mask decoder.
pub fn sam2() -> ModelSpec {
    let hidden = 896;
    let tokens = 900u64; // 30x30 windowed-attention token grid
    let mut b = GraphBuilder::new("SAM-2");
    let side = 30u64;
    let image = b.input("image", &[3, side * 16, side * 16]);
    let patches = b.conv2d("patch_embed", image, hidden, 16, 16);
    let mut x = b.reshape("to_tokens", patches, &[tokens, hidden]);
    let cfg = TransformerBlockConfig {
        hidden,
        heads: 14,
        ffn: hidden * 4,
        seq: tokens,
        rotary: false,
    };
    for layer in 0..24 {
        x = transformer_encoder_block(&mut b, x, &cfg, &format!("encoder.{layer}"));
    }
    let x = b.norm("encoder.ln", OpKind::LayerNorm, x);
    append_conv_decoder(&mut b, x, hidden, side);

    ModelSpec::new(
        "SegmentAnything-2",
        "SAM-2",
        ModelTask::ImageSegmentation,
        PaperStats {
            params_m: 215.0,
            macs_g: 218.0,
            layers: 1_668,
        },
        b.build(),
    )
}

fn depth_anything(
    name: &str,
    abbr: &str,
    hidden: u64,
    layers: u64,
    paper: PaperStats,
) -> ModelSpec {
    let tokens = 484u64; // 22x22 patch grid
    let side = 22u64;
    let mut b = GraphBuilder::new(name);
    let image = b.input("image", &[3, side * 14, side * 14]);
    let patches = b.conv2d("patch_embed", image, hidden, 14, 14);
    let mut x = b.reshape("to_tokens", patches, &[tokens, hidden]);
    let cfg = TransformerBlockConfig {
        hidden,
        heads: (hidden / 64).max(1),
        ffn: hidden * 4,
        seq: tokens,
        rotary: false,
    };
    for layer in 0..layers {
        x = transformer_encoder_block(&mut b, x, &cfg, &format!("backbone.{layer}"));
    }
    let x = b.norm("backbone.ln", OpKind::LayerNorm, x);
    append_conv_decoder(&mut b, x, hidden, side);
    ModelSpec::new(name, abbr, ModelTask::VideoSegmentation, paper, b.build())
}

/// DepthAnything-Small ("DepA-S": 24.3 M params, 14 GMACs).
pub fn depth_anything_small() -> ModelSpec {
    depth_anything(
        "DepthAnything-Small",
        "DepA-S",
        384,
        12,
        PaperStats {
            params_m: 24.3,
            macs_g: 14.0,
            layers: 1_108,
        },
    )
}

/// DepthAnything-Large ("DepA-L": 333 M params, 180 GMACs).
pub fn depth_anything_large() -> ModelSpec {
    depth_anything(
        "DepthAnything-Large",
        "DepA-L",
        1_024,
        24,
        PaperStats {
            params_m: 333.0,
            macs_g: 180.0,
            layers: 2_007,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_matches_published_size() {
        let m = resnet50();
        assert!(m.params_deviation() < 0.15, "{}", m);
        assert!(m.macs_deviation() < 0.30, "{}", m);
        m.graph().validate().unwrap();
    }

    #[test]
    fn vit_and_deepvit_share_structure_but_differ_in_depth() {
        let v = vit();
        let d = deepvit();
        assert!(d.graph().len() > v.graph().len());
        assert!(d.graph().total_params() as f64 > 1.8 * v.graph().total_params() as f64);
    }

    #[test]
    fn sam2_is_compute_heavy_relative_to_its_size() {
        let m = sam2();
        // MACs per parameter much higher than GPT-Neo-S (many tokens).
        let sam_intensity = m.graph().total_macs() as f64 / m.graph().total_params() as f64;
        let gpt = super::super::language::gptneo_small();
        let gpt_intensity = gpt.graph().total_macs() as f64 / gpt.graph().total_params() as f64;
        assert!(sam_intensity > 3.0 * gpt_intensity);
    }

    #[test]
    fn depth_anything_small_vs_large() {
        let s = depth_anything_small();
        let l = depth_anything_large();
        assert!(l.graph().total_params() > 10 * s.graph().total_params() / 2);
        assert!(l.graph().total_macs() > 5 * s.graph().total_macs());
        assert!(s.params_deviation() < 0.3, "{}", s);
        assert!(l.params_deviation() < 0.3, "{}", l);
    }

    #[test]
    fn vit_8b_has_about_8_billion_parameters() {
        let m = vit_8b();
        let params_b = m.graph().total_params() as f64 / 1e9;
        assert!((6.5..10.0).contains(&params_b), "{params_b} B");
    }

    #[test]
    fn conv_decoders_present_in_segmentation_models() {
        for m in [sam2(), depth_anything_small(), depth_anything_large()] {
            assert!(
                m.graph()
                    .nodes()
                    .iter()
                    .any(|n| n.name.starts_with("head.")),
                "{} should have a decoder head",
                m.name
            );
        }
    }
}
