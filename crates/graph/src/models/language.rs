//! Language and speech models: the GPT-Neo family, Whisper and the Llama-2
//! solver-stress models.

use crate::builder::GraphBuilder;
use crate::graph::NodeId;
use crate::op::OpKind;

use super::blocks::{transformer_decoder_block, transformer_encoder_block, TransformerBlockConfig};
use super::{DecodeSpec, ModelSpec, ModelTask, PaperStats};

/// Hyper-parameters of a decoder-only GPT-style model.
#[derive(Clone, Copy)]
struct GptConfig {
    vocab: u64,
    hidden: u64,
    heads: u64,
    ffn: u64,
    layers: u64,
    seq: u64,
    max_pos: u64,
    rotary: bool,
    tied_lm_head: bool,
}

fn build_gpt(name: &str, cfg: &GptConfig) -> crate::graph::Graph {
    let mut b = GraphBuilder::new(name);
    let tokens = b.input("input_ids", &[cfg.seq, 1]);
    let wte = b.embedding("wte", tokens, cfg.vocab, cfg.hidden);
    let h = if cfg.rotary {
        // Rotary models carry no learned position table.
        wte
    } else {
        let wpe = b.embedding("wpe", tokens, cfg.max_pos, cfg.hidden);
        b.binary("embed_add", OpKind::Add, wte, wpe)
    };

    let block_cfg = TransformerBlockConfig {
        hidden: cfg.hidden,
        heads: cfg.heads,
        ffn: cfg.ffn,
        seq: cfg.seq,
        rotary: cfg.rotary,
    };
    let mut x = h;
    for layer in 0..cfg.layers {
        x = transformer_encoder_block(&mut b, x, &block_cfg, &format!("h.{layer}"));
    }
    let x = b.norm("ln_f", OpKind::LayerNorm, x);
    if cfg.tied_lm_head {
        // The projection reuses the embedding weight; model it as a weight-free
        // activation matmul so parameters are not double counted.
        let wte_view = b.reshape("wte_view", x, &[cfg.hidden, cfg.vocab]);
        b.matmul_act("lm_head", x, wte_view);
    } else {
        b.matmul("lm_head", x, cfg.vocab);
    }
    b.build()
}

/// Prefill/decode-step split for a GPT-style model: the step graph is the
/// same architecture lowered at sequence length 1 (one token through every
/// layer against the resident KV cache), and the KV residency charge is K+V
/// per layer at fp16.
fn gpt_decode_spec(name: &str, abbr: &str, paper: PaperStats, cfg: &GptConfig) -> DecodeSpec {
    let step_cfg = GptConfig { seq: 1, ..*cfg };
    let graph = build_gpt(&format!("{name} (decode step)"), &step_cfg);
    let step = ModelSpec::new(
        &format!("{name} (decode step)"),
        &format!("{abbr}/step"),
        ModelTask::Nlp,
        PaperStats {
            params_m: paper.params_m,
            macs_g: paper.macs_g / cfg.seq as f64,
            layers: paper.layers,
        },
        graph,
    );
    DecodeSpec {
        step,
        kv_bytes_per_token: 2 * cfg.layers * cfg.hidden * 2,
        max_context: cfg.max_pos,
    }
}

/// GPT-Neo 125M-class model ("GPTN-S": 164 M params, 16 GMACs in Table 6).
pub fn gptneo_small() -> ModelSpec {
    let cfg = GptConfig {
        vocab: 50_257,
        hidden: 768,
        heads: 12,
        ffn: 3_072,
        layers: 12,
        seq: 128,
        max_pos: 2_048,
        rotary: false,
        tied_lm_head: false,
    };
    let paper = PaperStats {
        params_m: 164.0,
        macs_g: 16.0,
        layers: 606,
    };
    let graph = build_gpt("GPTNeo-Small", &cfg);
    ModelSpec::new("GPTNeo-Small", "GPTN-S", ModelTask::Nlp, paper, graph)
        .with_decode(gpt_decode_spec("GPTNeo-Small", "GPTN-S", paper, &cfg))
}

/// GPT-Neo 1.3B ("GPTN-1.3B": 1,419 M params, 170 GMACs).
pub fn gptneo_1_3b() -> ModelSpec {
    let cfg = GptConfig {
        vocab: 50_257,
        hidden: 2_048,
        heads: 16,
        ffn: 8_192,
        layers: 24,
        seq: 128,
        max_pos: 2_048,
        rotary: false,
        tied_lm_head: false,
    };
    let paper = PaperStats {
        params_m: 1_419.0,
        macs_g: 170.0,
        layers: 1_110,
    };
    let graph = build_gpt("GPTNeo-1.3B", &cfg);
    ModelSpec::new("GPTNeo-1.3B", "GPTN-1.3B", ModelTask::Nlp, paper, graph)
        .with_decode(gpt_decode_spec("GPTNeo-1.3B", "GPTN-1.3B", paper, &cfg))
}

/// GPT-Neo 2.7B ("GPTN-2.7B": 2,781 M params, 342 GMACs) — too large for any
/// baseline framework in the paper.
pub fn gptneo_2_7b() -> ModelSpec {
    let cfg = GptConfig {
        vocab: 50_257,
        hidden: 2_560,
        heads: 20,
        ffn: 10_240,
        layers: 32,
        seq: 128,
        max_pos: 2_048,
        rotary: false,
        tied_lm_head: false,
    };
    let paper = PaperStats {
        params_m: 2_781.0,
        macs_g: 342.0,
        layers: 1_446,
    };
    let graph = build_gpt("GPTNeo-2.7B", &cfg);
    ModelSpec::new("GPTNeo-2.7B", "GPTN-2.7B", ModelTask::Nlp, paper, graph)
        .with_decode(gpt_decode_spec("GPTNeo-2.7B", "GPTN-2.7B", paper, &cfg))
}

/// Single-token Whisper decode step: one token through the 12 decoder layers
/// against the resident self-attention KV cache, with cross-attention over
/// the encoder output (already computed at prefill and modelled here as a
/// plain input tensor). This replaces the old fixed-64-token dense decoder
/// pass on the decode path, so per-step activation peaks are charged instead
/// of one inflated full-sequence pass.
fn whisper_decode_step(
    hidden: u64,
    heads: u64,
    dec_layers: u64,
    enc_tokens: u64,
    vocab: u64,
) -> ModelSpec {
    let mut b = GraphBuilder::new("Whisper-Medium (decode step)");
    let enc = b.input("encoder_states", &[enc_tokens, hidden]);
    let tokens = b.input("decoder_ids", &[1, 1]);
    let te = b.embedding("decoder.wte", tokens, vocab, hidden);
    let pe = b.embedding("decoder.wpe", tokens, 448, hidden);
    let mut dec = b.binary("decoder.embed_add", OpKind::Add, te, pe);
    let dec_cfg = TransformerBlockConfig {
        hidden,
        heads,
        ffn: hidden * 4,
        seq: 1,
        rotary: false,
    };
    for layer in 0..dec_layers {
        dec = transformer_decoder_block(&mut b, dec, enc, &dec_cfg, &format!("decoder.{layer}"));
    }
    let dec = b.norm("decoder.ln_f", OpKind::LayerNorm, dec);
    let wte_view = b.reshape("decoder.wte_view", dec, &[hidden, vocab]);
    b.matmul_act("decoder.logits", dec, wte_view);

    ModelSpec::new(
        "Whisper-Medium (decode step)",
        "Whisp-M/step",
        ModelTask::SpeechRecognition,
        PaperStats {
            params_m: 356.0,
            macs_g: 55.0 / 64.0,
            layers: 2_026,
        },
        b.build(),
    )
}

/// Whisper-Medium ("Whisp-M": 356 M params, 55 GMACs): convolutional audio
/// stem, transformer encoder over audio frames, transformer decoder with
/// cross-attention over the encoder output.
pub fn whisper_medium() -> ModelSpec {
    let hidden = 1_024;
    let heads = 16;
    let enc_layers = 12;
    let dec_layers = 12;
    let enc_tokens = 250;
    let dec_tokens = 64;
    let vocab = 51_865u64;

    let mut b = GraphBuilder::new("Whisper-Medium");

    // Audio stem: mel spectrogram [80, frames] -> two 1D convs (modelled as
    // 2D with height 1) into the hidden size.
    let mel = b.input("mel", &[80, enc_tokens * 2, 1]);
    let c1 = b.conv2d("encoder.conv1", mel, hidden, 3, 1);
    let g1 = b.unary("encoder.gelu1", OpKind::GeLU, c1);
    let c2 = b.conv2d("encoder.conv2", g1, hidden, 3, 2);
    let g2 = b.unary("encoder.gelu2", OpKind::GeLU, c2);
    let mut enc = b.reshape("encoder.to_tokens", g2, &[enc_tokens, hidden]);

    let enc_cfg = TransformerBlockConfig {
        hidden,
        heads,
        ffn: hidden * 4,
        seq: enc_tokens,
        rotary: false,
    };
    for layer in 0..enc_layers {
        enc = transformer_encoder_block(&mut b, enc, &enc_cfg, &format!("encoder.{layer}"));
    }
    let enc = b.norm("encoder.ln_post", OpKind::LayerNorm, enc);

    // Decoder.
    let tokens = b.input("decoder_ids", &[dec_tokens, 1]);
    let te = b.embedding("decoder.wte", tokens, vocab, hidden);
    let pe = b.embedding("decoder.wpe", tokens, 448, hidden);
    let mut dec = b.binary("decoder.embed_add", OpKind::Add, te, pe);
    let dec_cfg = TransformerBlockConfig {
        hidden,
        heads,
        ffn: hidden * 4,
        seq: dec_tokens,
        rotary: false,
    };
    for layer in 0..dec_layers {
        dec = transformer_decoder_block(&mut b, dec, enc, &dec_cfg, &format!("decoder.{layer}"));
    }
    let dec = b.norm("decoder.ln_f", OpKind::LayerNorm, dec);
    // Tied output projection (weight-free activation matmul).
    let wte_view = b.reshape("decoder.wte_view", dec, &[hidden, vocab]);
    b.matmul_act("decoder.logits", dec, wte_view);

    ModelSpec::new(
        "Whisper-Medium",
        "Whisp-M",
        ModelTask::SpeechRecognition,
        PaperStats {
            params_m: 356.0,
            macs_g: 55.0,
            layers: 2_026,
        },
        b.build(),
    )
    .with_decode(DecodeSpec {
        step: whisper_decode_step(hidden, heads, dec_layers, enc_tokens, vocab),
        // Self-attention K+V per decoder layer at fp16; cross-attention K/V
        // are computed once from the encoder output at prefill and belong to
        // prefill residency, not the per-token charge.
        kv_bytes_per_token: 2 * dec_layers * hidden * 2,
        max_context: 448,
    })
}

/// Llama-2 13B: solver-stress model for Table 4 (not part of the inference
/// evaluation).
pub fn llama2_13b() -> ModelSpec {
    let graph = build_gpt(
        "Llama2-13B",
        &GptConfig {
            vocab: 32_000,
            hidden: 5_120,
            heads: 40,
            ffn: 20_480,
            layers: 40,
            seq: 128,
            max_pos: 4_096,
            rotary: true,
            tied_lm_head: false,
        },
    );
    ModelSpec::new(
        "Llama2-13B",
        "Llama2-13B",
        ModelTask::Nlp,
        PaperStats {
            params_m: 13_000.0,
            macs_g: 1_700.0,
            layers: 2_000,
        },
        graph,
    )
}

/// Llama-2 70B: the largest solver-stress model of Table 4.
pub fn llama2_70b() -> ModelSpec {
    let graph = build_gpt(
        "Llama2-70B",
        &GptConfig {
            vocab: 32_000,
            hidden: 8_192,
            heads: 64,
            ffn: 32_768,
            layers: 80,
            seq: 128,
            max_pos: 4_096,
            rotary: true,
            tied_lm_head: false,
        },
    );
    ModelSpec::new(
        "Llama2-70B",
        "Llama2-70B",
        ModelTask::Nlp,
        PaperStats {
            params_m: 70_000.0,
            macs_g: 9_000.0,
            layers: 4_000,
        },
        graph,
    )
}

/// Shared consumer for `NodeId` so the compiler does not warn about the unused
/// helper in non-test builds.
#[allow(dead_code)]
fn _assert_nodeid(_: NodeId) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gptneo_small_matches_published_size() {
        let m = gptneo_small();
        assert!(m.params_deviation() < 0.1, "{}", m);
        assert!(m.macs_deviation() < 0.15, "{}", m);
    }

    #[test]
    fn gptneo_family_scales_monotonically() {
        let s = gptneo_small();
        let m = gptneo_1_3b();
        let l = gptneo_2_7b();
        assert!(s.graph().total_params() < m.graph().total_params());
        assert!(m.graph().total_params() < l.graph().total_params());
        assert!(s.graph().total_macs() < m.graph().total_macs());
        assert!(m.graph().total_macs() < l.graph().total_macs());
    }

    #[test]
    fn gptneo_1_3b_close_to_table_6() {
        let m = gptneo_1_3b();
        assert!(m.params_deviation() < 0.05, "{}", m);
        assert!(m.macs_deviation() < 0.05, "{}", m);
    }

    #[test]
    fn whisper_has_encoder_and_decoder_structure() {
        let m = whisper_medium();
        let graph = m.graph();
        graph.validate().unwrap();
        assert!(graph.nodes().iter().any(|n| n.name.starts_with("encoder.")));
        assert!(graph.nodes().iter().any(|n| n.name.contains(".cross.")));
        assert!(m.params_deviation() < 0.2, "{}", m);
    }

    #[test]
    fn autoregressive_models_carry_decode_specs() {
        for m in [
            gptneo_small(),
            gptneo_1_3b(),
            gptneo_2_7b(),
            whisper_medium(),
        ] {
            let d = m
                .decode()
                .unwrap_or_else(|| panic!("{} lacks decode", m.name));
            d.step.graph().validate().unwrap();
            assert!(d.kv_bytes_per_token > 0, "{}", m.name);
            assert!(d.max_context > 0, "{}", m.name);
            assert_ne!(d.step.abbr, m.abbr, "step spec must cache separately");
        }
    }

    #[test]
    fn decode_step_peaks_are_below_dense_pass_peaks() {
        // The old lowering ran Whisper's decoder as one dense 64-token pass
        // (and GPT-Neo as a dense 128-token pass), inflating per-invocation
        // activation peaks; a single decode step must peak well below that.
        for m in [gptneo_small(), gptneo_2_7b(), whisper_medium()] {
            let d = m.decode().unwrap();
            let step_peak = d.step.graph().max_activation_bytes();
            let dense_peak = m.graph().max_activation_bytes();
            assert!(
                step_peak * 2 <= dense_peak,
                "{}: step peak {} vs dense peak {}",
                m.name,
                step_peak,
                dense_peak
            );
            assert!(
                d.step.graph().total_macs() * 8 < m.graph().total_macs(),
                "{}: step should be far cheaper than the dense pass",
                m.name
            );
        }
    }

    #[test]
    fn gpt_kv_charge_matches_architecture() {
        let m = gptneo_small();
        let d = m.decode().unwrap();
        // K+V, 12 layers, hidden 768, fp16.
        assert_eq!(d.kv_bytes_per_token, 2 * 12 * 768 * 2);
        assert_eq!(d.max_context, 2_048);
    }

    #[test]
    fn llama_models_use_rotary_embeddings() {
        let m = llama2_13b();
        assert!(m
            .graph()
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::RotaryEmbedding));
        // No learned positional table.
        assert!(!m.graph().nodes().iter().any(|n| n.name == "wpe"));
    }

    #[test]
    fn llama2_70b_is_roughly_70b_parameters() {
        let m = llama2_70b();
        let params_b = m.graph().total_params() as f64 / 1e9;
        assert!((55.0..85.0).contains(&params_b), "{params_b} B");
    }
}
