//! The lowered DNN computational graph.
//!
//! Following Section 3.1 of the paper, a DNN is a DAG `G = (V, E)` whose nodes
//! are low-level operators with an externally fixed **linear execution order**
//! `1, 2, …, N`. Nodes are stored in that order; edges refer to producer
//! indices. Each node may own a weight tensor (the objects FlashMem streams)
//! and records its arithmetic work in multiply-accumulate operations (MACs).

use serde::{Deserialize, Serialize};

use crate::op::{OpCategory, OpKind};
use crate::tensor::TensorDesc;

/// Identifier of a node: its position in the execution order (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One operator in the lowered graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Execution-order id.
    pub id: NodeId,
    /// Unique name, e.g. `"block3.ffn.matmul1"`.
    pub name: String,
    /// Operator kind.
    pub kind: OpKind,
    /// Producer nodes whose outputs this node consumes.
    pub inputs: Vec<NodeId>,
    /// Descriptor of the node's output activation.
    pub output: TensorDesc,
    /// Weight tensor owned by this node, if any.
    pub weight: Option<TensorDesc>,
    /// Multiply-accumulate operations performed by the node.
    pub macs: u64,
}

impl Node {
    /// Operator category (Table 5).
    pub fn category(&self) -> OpCategory {
        self.kind.category()
    }

    /// Bytes of weights owned by this node (0 if weight-free).
    pub fn weight_bytes(&self) -> u64 {
        self.weight.as_ref().map(|w| w.bytes()).unwrap_or(0)
    }

    /// Number of weight parameters owned by this node.
    pub fn weight_params(&self) -> u64 {
        self.weight.as_ref().map(|w| w.elements()).unwrap_or(0)
    }

    /// Bytes of the output activation.
    pub fn output_bytes(&self) -> u64 {
        self.output.bytes()
    }

    /// Floating point operations (2 × MACs).
    pub fn flops(&self) -> u64 {
        self.macs.saturating_mul(2)
    }
}

/// Errors raised by graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node references an input that does not precede it in execution order.
    InvalidEdge {
        /// The consuming node.
        node: usize,
        /// The offending input reference.
        input: usize,
    },
    /// Two nodes share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The graph contains no nodes.
    Empty,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::InvalidEdge { node, input } => {
                write!(
                    f,
                    "node {node} consumes input {input} that does not precede it"
                )
            }
            GraphError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A lowered DNN graph in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Create a graph from nodes already in execution order.
    ///
    /// Use [`GraphBuilder`](crate::builder::GraphBuilder) to construct graphs
    /// incrementally; this constructor is for deserialization and tests.
    pub fn from_nodes(name: &str, nodes: Vec<Node>) -> Self {
        Graph {
            name: name.to_string(),
            nodes,
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (the paper's "# Layers" after lowering).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0)
    }

    /// Iterate over nodes in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Validate structural invariants: non-empty, unique names, and every
    /// edge pointing to an earlier node (consistent with the fixed execution
    /// order assumed by the OPG formulation).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if !names.insert(node.name.as_str()) {
                return Err(GraphError::DuplicateName {
                    name: node.name.clone(),
                });
            }
            for input in &node.inputs {
                if input.0 >= idx {
                    return Err(GraphError::InvalidEdge {
                        node: idx,
                        input: input.0,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of weight parameters (paper's "# Params").
    pub fn total_params(&self) -> u64 {
        self.nodes.iter().map(|n| n.weight_params()).sum()
    }

    /// Total weight bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.weight_bytes()).sum()
    }

    /// Total MACs (paper's "# MACs").
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(|n| n.macs).sum()
    }

    /// Number of nodes that own weights.
    pub fn weighted_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.weight.is_some()).count()
    }

    /// Largest single weight tensor in bytes (a lower bound on any streaming
    /// plan's in-flight memory).
    pub fn max_weight_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.weight_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Peak activation bytes across nodes — a rough proxy for the working-set
    /// memory that exists regardless of weight policy. Reshape nodes are
    /// excluded: they are zero-copy views of their producer (including the
    /// tied-embedding "views" some language models use for their logits
    /// projection) and never materialise a separate buffer.
    pub fn max_activation_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.kind != OpKind::Reshape)
            .map(|n| n.output_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Count of nodes per category.
    pub fn category_histogram(&self) -> [(OpCategory, usize); 3] {
        let mut elemental = 0;
        let mut reusable = 0;
        let mut hierarchical = 0;
        for n in &self.nodes {
            match n.category() {
                OpCategory::Elemental => elemental += 1,
                OpCategory::Reusable => reusable += 1,
                OpCategory::Hierarchical => hierarchical += 1,
            }
        }
        [
            (OpCategory::Elemental, elemental),
            (OpCategory::Reusable, reusable),
            (OpCategory::Hierarchical, hierarchical),
        ]
    }

    /// Nodes that consume the output of `id` (direct successors).
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// The last node (in execution order) that consumes the output of `id`,
    /// i.e. when its activation can be released.
    pub fn last_consumer(&self, id: NodeId) -> Option<NodeId> {
        self.consumers(id).into_iter().max()
    }
}

impl std::fmt::Display for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} layers, {:.1} M params, {:.1} GMACs",
            self.name,
            self.len(),
            self.total_params() as f64 / 1e6,
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::DType;

    fn node(id: usize, name: &str, kind: OpKind, inputs: &[usize], weight: Option<u64>) -> Node {
        Node {
            id: NodeId(id),
            name: name.to_string(),
            kind,
            inputs: inputs.iter().map(|&i| NodeId(i)).collect(),
            output: TensorDesc::new(&[128, 768], DType::F16),
            weight: weight.map(|e| TensorDesc::new(&[e], DType::F16)),
            macs: 1000,
        }
    }

    fn small_graph() -> Graph {
        Graph::from_nodes(
            "tiny",
            vec![
                node(0, "embed", OpKind::Embedding, &[], Some(1000)),
                node(1, "mm", OpKind::MatMul, &[0], Some(2000)),
                node(2, "gelu", OpKind::GeLU, &[1], None),
                node(3, "ln", OpKind::LayerNorm, &[2], Some(10)),
            ],
        )
    }

    #[test]
    fn validation_accepts_well_formed_graph() {
        assert!(small_graph().validate().is_ok());
    }

    #[test]
    fn validation_rejects_forward_edge() {
        let g = Graph::from_nodes(
            "bad",
            vec![
                node(0, "a", OpKind::MatMul, &[1], None),
                node(1, "b", OpKind::ReLU, &[], None),
            ],
        );
        assert_eq!(
            g.validate(),
            Err(GraphError::InvalidEdge { node: 0, input: 1 })
        );
    }

    #[test]
    fn validation_rejects_duplicate_names_and_empty() {
        let g = Graph::from_nodes(
            "dup",
            vec![
                node(0, "x", OpKind::ReLU, &[], None),
                node(1, "x", OpKind::ReLU, &[0], None),
            ],
        );
        assert!(matches!(
            g.validate(),
            Err(GraphError::DuplicateName { .. })
        ));
        assert_eq!(
            Graph::from_nodes("e", vec![]).validate(),
            Err(GraphError::Empty)
        );
    }

    #[test]
    fn aggregate_statistics() {
        let g = small_graph();
        assert_eq!(g.total_params(), 3010);
        assert_eq!(g.total_weight_bytes(), 3010 * 2);
        assert_eq!(g.total_macs(), 4000);
        assert_eq!(g.weighted_node_count(), 3);
        assert_eq!(g.max_weight_bytes(), 4000);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn consumers_and_last_consumer() {
        let g = small_graph();
        assert_eq!(g.consumers(NodeId(1)), vec![NodeId(2)]);
        assert_eq!(g.last_consumer(NodeId(2)), Some(NodeId(3)));
        assert_eq!(g.last_consumer(NodeId(3)), None);
    }

    #[test]
    fn category_histogram_counts() {
        let g = small_graph();
        let hist = g.category_histogram();
        assert_eq!(hist[0].1 + hist[1].1 + hist[2].1, g.len());
        assert_eq!(hist[1].1, 2); // embedding + matmul
        assert_eq!(hist[2].1, 1); // layernorm
    }

    #[test]
    fn display_reports_summary() {
        let text = small_graph().to_string();
        assert!(text.contains("tiny"));
        assert!(text.contains("4 layers"));
    }
}
