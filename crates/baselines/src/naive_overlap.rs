//! Naive overlap strategies (Figure 9).
//!
//! To isolate the value of FlashMem's load-capacity-aware planning, the paper
//! compares against two strawman streaming policies that share FlashMem's
//! executor but plan naively:
//!
//! * **Always-Next Loading** — every weight is loaded and transformed during
//!   the kernel immediately preceding its consumer, regardless of that
//!   kernel's load capacity. The GPU transformation step lags behind the disk
//!   and kernels stall (up to 4.3× slower than FlashMem).
//! * **Same-Op-Type Prefetching** — a weight is loaded during the nearest
//!   preceding kernel of the same operator category. This respects capacity a
//!   little better but leaves compute and data movement imbalanced (up to
//!   2.4× slower).

use flashmem_core::engine::{execute_naive_plan, CompiledArtifact, FrameworkKind, InferenceEngine};
use flashmem_core::lc_opg::node_to_kernel_map;
use flashmem_core::{ExecutionReport, FlashMemConfig, OverlapPlan};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionPlan, ModelSpec, WeightInventory};
use serde::{Deserialize, Serialize};

/// Which naive policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NaiveStrategy {
    /// Always-Next Loading.
    AlwaysNext,
    /// Same-Op-Type Prefetching.
    SameOpType,
}

/// A streaming framework that uses FlashMem's executor with a naive plan.
#[derive(Debug, Clone)]
pub struct NaiveOverlap {
    strategy: NaiveStrategy,
    config: FlashMemConfig,
}

impl NaiveOverlap {
    /// The Always-Next Loading strawman.
    pub fn always_next() -> Self {
        NaiveOverlap {
            strategy: NaiveStrategy::AlwaysNext,
            config: FlashMemConfig::memory_priority(),
        }
    }

    /// The Same-Op-Type Prefetching strawman.
    pub fn same_op_type() -> Self {
        NaiveOverlap {
            strategy: NaiveStrategy::SameOpType,
            config: FlashMemConfig::memory_priority(),
        }
    }

    /// The policy used.
    pub fn strategy(&self) -> NaiveStrategy {
        self.strategy
    }

    /// Build the naive overlap plan for a model.
    pub fn plan(&self, model: &ModelSpec) -> (FusionPlan, OverlapPlan) {
        let graph = model.graph();
        let fusion = FusionPlan::default_fusion(graph);
        let node_to_kernel = node_to_kernel_map(&fusion);
        let inventory = WeightInventory::with_chunk_size(graph, self.config.chunk_bytes);
        let mut plan = OverlapPlan::new(fusion.len(), self.config.chunk_bytes);

        for weight in inventory.weights() {
            let consumer = node_to_kernel.get(&weight.consumer).copied().unwrap_or(0);
            let chunks = weight.chunk_count(self.config.chunk_bytes);
            if consumer == 0 || weight.needs_transform || chunks == 0 {
                plan.add_preload(weight.consumer, consumer, weight.bytes);
                continue;
            }
            let target = match self.strategy {
                // Everything lands on the kernel right before the consumer.
                NaiveStrategy::AlwaysNext => consumer - 1,
                // The nearest preceding kernel whose dominant category matches
                // the consumer's.
                NaiveStrategy::SameOpType => {
                    let consumer_category = fusion.groups()[consumer].dominant_category(graph);
                    (0..consumer)
                        .rev()
                        .find(|&k| fusion.groups()[k].dominant_category(graph) == consumer_category)
                        .unwrap_or(consumer - 1)
                }
            };
            plan.add_streamed(
                weight.consumer,
                consumer,
                target,
                weight.bytes,
                &[(target, chunks)],
            );
        }
        (fusion, plan)
    }
}

impl InferenceEngine for NaiveOverlap {
    fn kind(&self) -> FrameworkKind {
        match self.strategy {
            NaiveStrategy::AlwaysNext => FrameworkKind::AlwaysNext,
            NaiveStrategy::SameOpType => FrameworkKind::SameOpType,
        }
    }

    fn compile(&self, model: &ModelSpec, _device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        let (fusion, plan) = self.plan(model);
        Ok(CompiledArtifact::NaivePlan { fusion, plan })
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        match artifact {
            // The naive strategies stream weights but have neither
            // load-capacity awareness nor rewritten kernels: every streamed
            // weight pays a dedicated repack kernel that serialises with
            // execution.
            CompiledArtifact::NaivePlan { fusion, plan } => {
                execute_naive_plan(&self.name(), model, fusion, plan, device)
            }
            _ => Err(CompiledArtifact::mismatch(&self.name())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_core::{FlashMem, FlashMemConfig};
    use flashmem_graph::ModelZoo;

    #[test]
    fn naive_plans_validate_against_the_inventory() {
        let config = FlashMemConfig::memory_priority();
        for naive in [NaiveOverlap::always_next(), NaiveOverlap::same_op_type()] {
            let model = ModelZoo::gptneo_small();
            let (_, plan) = naive.plan(&model);
            let inventory = WeightInventory::with_chunk_size(model.graph(), config.chunk_bytes);
            plan.validate(&inventory, None).unwrap();
            assert!(plan.streamed_fraction() > 0.0);
        }
    }

    #[test]
    fn always_next_streams_everything_into_the_previous_kernel() {
        let naive = NaiveOverlap::always_next();
        let model = ModelZoo::vit();
        let (_, plan) = naive.plan(&model);
        for schedule in plan.weights().iter().filter(|w| !w.preloaded) {
            assert_eq!(schedule.disk_load_kernel, schedule.consumer_kernel - 1);
        }
    }

    #[test]
    fn same_op_type_targets_matching_categories() {
        let naive = NaiveOverlap::same_op_type();
        let model = ModelZoo::vit();
        let graph = model.graph();
        let (fusion, plan) = naive.plan(&model);
        for schedule in plan.weights().iter().filter(|w| !w.preloaded) {
            let consumer_cat = fusion.groups()[schedule.consumer_kernel].dominant_category(graph);
            let target_cat = fusion.groups()[schedule.disk_load_kernel].dominant_category(graph);
            // Either a matching category was found or the fallback (previous
            // kernel) was used.
            assert!(
                target_cat == consumer_cat
                    || schedule.disk_load_kernel == schedule.consumer_kernel - 1
            );
        }
    }

    #[test]
    fn flashmem_outperforms_both_naive_strategies() {
        // The Figure 9 ordering: FlashMem < Same-Op-Type < Always-Next in
        // integrated latency (Always-Next is the worst).
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::gptneo_small();
        let flashmem = FlashMem::new(device.clone())
            .with_config(FlashMemConfig::memory_priority())
            .run(&model)
            .unwrap();
        let always_next = NaiveOverlap::always_next().run(&model, &device).unwrap();
        let same_op = NaiveOverlap::same_op_type().run(&model, &device).unwrap();
        assert!(
            flashmem.integrated_latency_ms < same_op.integrated_latency_ms,
            "flashmem {} vs same-op {}",
            flashmem.integrated_latency_ms,
            same_op.integrated_latency_ms
        );
        assert!(
            flashmem.integrated_latency_ms < always_next.integrated_latency_ms,
            "flashmem {} vs always-next {}",
            flashmem.integrated_latency_ms,
            always_next.integrated_latency_ms
        );
    }

    #[test]
    fn naive_frameworks_support_every_model() {
        let naive = NaiveOverlap::always_next();
        for model in ModelZoo::all_evaluated() {
            assert!(naive.supports(&model));
        }
    }
}
