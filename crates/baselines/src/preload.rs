//! Simulated preloading frameworks (MNN, NCNN, TVM, LiteRT, ExecuTorch).
//!
//! All the baselines of Table 7/8 share the same architecture: parse the
//! model, load **all** weights from disk into unified memory, transform every
//! weight into the GPU-friendly layout (the "Trans." column of Table 1 — a
//! long sequence of small repack kernels), and only then execute the graph.
//! They differ in the weight layout they use, how many redundant copies they
//! keep around, how fast their kernels are, and which operators / model sizes
//! they support at all. [`FrameworkProfile`] captures those differences and
//! [`PreloadFramework`] compiles them onto the simulator.

use flashmem_core::engine::{
    execute_command_stream, CompiledArtifact, FrameworkKind, InferenceEngine,
};
use flashmem_core::ExecutionReport;
use flashmem_gpu_sim::bandwidth::MemoryTier;
use flashmem_gpu_sim::engine::{Command, CommandStream, QueueKind};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::texture::WeightLayout;
use flashmem_gpu_sim::{DeviceSpec, SimError};
use flashmem_graph::{FusionPlan, Graph, ModelSpec};
use flashmem_profiler::{kernel_for_group, LoweringOptions};
use serde::{Deserialize, Serialize};

/// Behavioural profile of a preloading framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkProfile {
    /// Which framework this profile models.
    pub kind: FrameworkKind,
    /// Layout weights end up in for SM reads.
    pub weight_layout: WeightLayout,
    /// Whether weights are stored in FP32 internally (TVM keeps FP32 copies
    /// for fallback paths, inflating memory).
    pub fp32_weights: bool,
    /// Effective disk-read efficiency during model loading (model parsing,
    /// small reads and allocator churn keep frameworks well below the raw
    /// 1.5 GB/s of the flash storage).
    pub load_efficiency: f64,
    /// Fixed per-weight layout-transformation overhead in milliseconds (the
    /// many small repack kernel launches of the "Trans." phase).
    pub transform_overhead_ms: f64,
    /// Multiplier applied to the transform overhead of convolution weights
    /// (Winograd/im2col transforms are much heavier).
    pub conv_transform_multiplier: f64,
    /// Fraction of the unified-memory staging copy of the weights that stays
    /// resident after transformation (1.0 = the framework never releases the
    /// CPU-side copy; 0.0 = released immediately).
    pub retained_um_copy: f64,
    /// Effective GPU compute efficiency of the framework's kernels relative
    /// to the simulator's roofline (captures kernel quality / tuning).
    pub exec_efficiency: f64,
    /// Fixed runtime overhead in MiB (interpreter, delegate caches, arenas).
    pub runtime_overhead_mib: u64,
    /// Activation-arena slack factor (frameworks over-allocate activation
    /// arenas; 1.0 = exactly the peak activation working set).
    pub activation_slack: f64,
    /// Largest model (in millions of parameters) the framework can initialise
    /// on a 16 GB flagship before aborting.
    pub max_params_m: f64,
    /// Whether transformer normalisation operators (LayerNorm & friends) are
    /// available on the GPU path.
    pub supports_layernorm: bool,
    /// Model abbreviations from Table 7 that the framework cannot run for
    /// reasons beyond the two generic predicates above (export toolchain or
    /// operator gaps).
    pub unsupported_abbrs: Vec<String>,
}

impl FrameworkProfile {
    /// Alibaba MNN.
    pub fn mnn() -> Self {
        FrameworkProfile {
            kind: FrameworkKind::Mnn,
            weight_layout: WeightLayout::Texture2p5d,
            fp32_weights: false,
            load_efficiency: 0.25,
            transform_overhead_ms: 1.6,
            conv_transform_multiplier: 20.0,
            retained_um_copy: 0.6,
            exec_efficiency: 0.12,
            runtime_overhead_mib: 120,
            activation_slack: 2.0,
            max_params_m: 900.0,
            supports_layernorm: true,
            unsupported_abbrs: vec!["GPTN-1.3B".into(), "GPTN-2.7B".into(), "SAM-2".into()],
        }
    }

    /// Tencent NCNN: fast convolution kernels but no GPU LayerNorm, so no
    /// transformer model runs on its GPU path.
    pub fn ncnn() -> Self {
        FrameworkProfile {
            kind: FrameworkKind::Ncnn,
            weight_layout: WeightLayout::Texture2p5d,
            fp32_weights: false,
            load_efficiency: 0.30,
            transform_overhead_ms: 1.2,
            conv_transform_multiplier: 12.0,
            retained_um_copy: 0.8,
            exec_efficiency: 0.11,
            runtime_overhead_mib: 90,
            activation_slack: 1.6,
            max_params_m: 600.0,
            supports_layernorm: false,
            unsupported_abbrs: vec![],
        }
    }

    /// Apache TVM: auto-tuned kernels but FP32 weight copies and a heavy
    /// runtime, giving it the largest memory footprints of Table 8.
    pub fn tvm() -> Self {
        FrameworkProfile {
            kind: FrameworkKind::Tvm,
            weight_layout: WeightLayout::Texture2p5d,
            fp32_weights: true,
            load_efficiency: 0.35,
            transform_overhead_ms: 2.2,
            conv_transform_multiplier: 4.0,
            retained_um_copy: 1.0,
            exec_efficiency: 0.10,
            runtime_overhead_mib: 160,
            activation_slack: 2.5,
            max_params_m: 900.0,
            supports_layernorm: true,
            unsupported_abbrs: vec![
                "GPTN-1.3B".into(),
                "GPTN-2.7B".into(),
                "SAM-2".into(),
                "SD-UNet".into(),
            ],
        }
    }

    /// LiteRT (TensorFlow Lite): efficient classification kernels, limited
    /// coverage of generative / speech models on the GPU delegate.
    pub fn litert() -> Self {
        FrameworkProfile {
            kind: FrameworkKind::LiteRt,
            weight_layout: WeightLayout::Texture2p5d,
            fp32_weights: false,
            load_efficiency: 0.40,
            transform_overhead_ms: 1.0,
            conv_transform_multiplier: 10.0,
            retained_um_copy: 1.0,
            exec_efficiency: 0.20,
            runtime_overhead_mib: 140,
            activation_slack: 2.2,
            max_params_m: 500.0,
            supports_layernorm: true,
            unsupported_abbrs: vec![
                "GPTN-S".into(),
                "GPTN-1.3B".into(),
                "GPTN-2.7B".into(),
                "SAM-2".into(),
                "SD-UNet".into(),
                "Whisp-M".into(),
                "DepA-S".into(),
                "DepA-L".into(),
            ],
        }
    }

    /// PyTorch ExecuTorch: portable but without GPU-specific memory-hierarchy
    /// optimisations — weights stay in flat unified-memory buffers, which is
    /// why its execution latencies explode in Table 7.
    pub fn executorch() -> Self {
        FrameworkProfile {
            kind: FrameworkKind::ExecuTorch,
            weight_layout: WeightLayout::LinearBuffer,
            fp32_weights: false,
            load_efficiency: 0.55,
            transform_overhead_ms: 0.05,
            conv_transform_multiplier: 1.0,
            retained_um_copy: 1.0,
            exec_efficiency: 0.004,
            runtime_overhead_mib: 110,
            activation_slack: 1.8,
            max_params_m: 1_600.0,
            supports_layernorm: true,
            unsupported_abbrs: vec![
                "GPTN-2.7B".into(),
                "Whisp-M".into(),
                "DepA-S".into(),
                "DepA-L".into(),
            ],
        }
    }

    /// SmartMem: the precursor prototype — 2.5D layouts chosen offline so no
    /// runtime Reshape/Transpose, much cheaper transformation and better
    /// kernels, but still a preloading framework.
    pub fn smartmem() -> Self {
        FrameworkProfile {
            kind: FrameworkKind::SmartMem,
            weight_layout: WeightLayout::Texture2p5dOptimized,
            fp32_weights: false,
            load_efficiency: 0.45,
            transform_overhead_ms: 0.45,
            conv_transform_multiplier: 12.0,
            retained_um_copy: 0.25,
            exec_efficiency: 0.30,
            runtime_overhead_mib: 100,
            activation_slack: 1.5,
            max_params_m: 1_600.0,
            supports_layernorm: true,
            unsupported_abbrs: vec!["GPTN-2.7B".into()],
        }
    }
}

/// A preloading framework driven by a [`FrameworkProfile`].
#[derive(Debug, Clone)]
pub struct PreloadFramework {
    profile: FrameworkProfile,
}

impl PreloadFramework {
    /// Wrap a profile.
    pub fn new(profile: FrameworkProfile) -> Self {
        PreloadFramework { profile }
    }

    /// All six baseline frameworks of Tables 7/8, in table order.
    pub fn all_baselines() -> Vec<PreloadFramework> {
        vec![
            Self::new(FrameworkProfile::mnn()),
            Self::new(FrameworkProfile::ncnn()),
            Self::new(FrameworkProfile::tvm()),
            Self::new(FrameworkProfile::litert()),
            Self::new(FrameworkProfile::executorch()),
            Self::new(FrameworkProfile::smartmem()),
        ]
    }

    /// The behavioural profile.
    pub fn profile(&self) -> &FrameworkProfile {
        &self.profile
    }

    fn lowering_options(&self) -> LoweringOptions {
        LoweringOptions {
            weight_layout: self.profile.weight_layout,
            pipelined: false,
            divergence_penalty: 0.0,
            fp16: !self.profile.fp32_weights,
        }
    }

    /// Compile the preload-then-execute schedule for `graph`.
    pub fn compile_stream(&self, graph: &Graph) -> CommandStream {
        let profile = &self.profile;
        let fusion = FusionPlan::default_fusion(graph);
        let options = self.lowering_options();
        let weight_scale = if profile.fp32_weights { 2 } else { 1 };

        let mut stream = CommandStream::new();
        stream.push(Command::alloc(
            "runtime_overhead",
            MemoryTier::UnifiedMemory,
            profile.runtime_overhead_mib * 1024 * 1024,
            &[],
        ));
        let activation_bytes =
            (graph.max_activation_bytes() as f64 * 2.0 * profile.activation_slack) as u64;
        stream.push(Command::alloc(
            "activation_arena",
            MemoryTier::UnifiedMemory,
            activation_bytes.max(1),
            &[],
        ));

        // Phase 1 — load every weight from disk into unified memory. The
        // framework's parser/allocator keeps the effective read rate well
        // below the raw flash bandwidth, modelled as extra traffic.
        let total_weight_bytes = graph.total_weight_bytes() * weight_scale;
        let effective_load_bytes =
            (total_weight_bytes as f64 / profile.load_efficiency.max(0.05)) as u64;
        let um_alloc = stream.push(Command::alloc(
            "weights.um",
            MemoryTier::UnifiedMemory,
            total_weight_bytes,
            &[],
        ));
        let load = stream.push(Command::transfer(
            "weights.load",
            effective_load_bytes,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[um_alloc],
        ));

        // Phase 2 — transform every weight into the execution layout: one
        // repack kernel per weighted node, each with a fixed launch/sync
        // overhead (Winograd transforms for convolutions are far heavier).
        let traffic_factor = options.weight_layout.transform_traffic_factor();
        let mut last_transform = load;
        let mut tm_total: u64 = 0;
        for node in graph.nodes().iter().filter(|n| n.weight_bytes() > 0) {
            let bytes = node.weight_bytes() * weight_scale;
            tm_total += bytes;
            let overhead = if node.kind.needs_weight_transform() {
                profile.transform_overhead_ms * profile.conv_transform_multiplier
            } else {
                profile.transform_overhead_ms
            };
            // Model the fixed overhead as extra traffic on the transform
            // (overhead_ms at texture bandwidth), so a single command carries
            // both the data movement and the launch/sync cost.
            let overhead_bytes = (overhead * 1e-3 * 172.0e9) as u64;
            let transform = stream.push(Command::transform(
                &format!("{}.repack", node.name),
                bytes + overhead_bytes,
                traffic_factor.max(0.2),
                QueueKind::Compute,
                &[last_transform],
            ));
            last_transform = transform;
        }
        if options.weight_layout != WeightLayout::LinearBuffer {
            stream.push(Command::alloc(
                "weights.texture",
                MemoryTier::TextureMemory,
                tm_total,
                &[last_transform],
            ));
        }
        // Release the fraction of the unified-memory staging copy the
        // framework does not retain.
        let released =
            (total_weight_bytes as f64 * (1.0 - profile.retained_um_copy)).round() as u64;
        if released > 0 && options.weight_layout != WeightLayout::LinearBuffer {
            // Model the partial release by freeing the staging buffer and
            // re-allocating the retained share.
            let free = stream.push(Command::free(
                "weights.um_release",
                um_alloc,
                &[last_transform],
            ));
            if total_weight_bytes > released {
                stream.push(Command::alloc(
                    "weights.um_retained",
                    MemoryTier::UnifiedMemory,
                    total_weight_bytes - released,
                    &[free],
                ));
            }
        }
        let init_done = stream.push(Command::barrier("init_done", &[last_transform]));

        // Phase 3 — execute the graph, one fused kernel at a time.
        let mut prev = init_done;
        for group in fusion.groups() {
            let mut kernel = kernel_for_group(graph, group, &options);
            // Framework kernel quality: effective FLOP rate is a fraction of
            // the roofline the simulator models.
            kernel.flops /= self.profile.exec_efficiency.max(1e-3);
            prev = stream.push(Command::kernel(&kernel.name.clone(), kernel, 0, &[prev]));
        }
        stream
    }
}

impl InferenceEngine for PreloadFramework {
    fn kind(&self) -> FrameworkKind {
        self.profile.kind
    }

    fn supports(&self, model: &ModelSpec) -> bool {
        let profile = &self.profile;
        if profile.unsupported_abbrs.iter().any(|a| a == &model.abbr) {
            return false;
        }
        if model.params_m() > profile.max_params_m {
            return false;
        }
        if !profile.supports_layernorm {
            let has_layernorm = model.graph().nodes().iter().any(|n| {
                matches!(
                    n.kind,
                    flashmem_graph::OpKind::LayerNorm | flashmem_graph::OpKind::RMSNorm
                )
            });
            if has_layernorm {
                return false;
            }
        }
        true
    }

    fn compile(&self, model: &ModelSpec, _device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        if !self.supports(model) {
            return Err(SimError::InvalidParameter {
                message: format!("{} does not support {}", self.name(), model.abbr),
            });
        }
        Ok(CompiledArtifact::Preload(
            self.compile_stream(model.graph()),
        ))
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        match artifact {
            CompiledArtifact::Preload(stream) => {
                execute_command_stream(&self.name(), model, stream, device)
            }
            _ => Err(CompiledArtifact::mismatch(&self.name())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn support_matrix_matches_table_7_dashes() {
        let mnn = PreloadFramework::new(FrameworkProfile::mnn());
        let ncnn = PreloadFramework::new(FrameworkProfile::ncnn());
        let tvm = PreloadFramework::new(FrameworkProfile::tvm());
        let litert = PreloadFramework::new(FrameworkProfile::litert());
        let etorch = PreloadFramework::new(FrameworkProfile::executorch());
        let smem = PreloadFramework::new(FrameworkProfile::smartmem());

        let gptn_s = ModelZoo::gptneo_small();
        let gptn_13 = ModelZoo::gptneo_1_3b();
        let gptn_27 = ModelZoo::gptneo_2_7b();
        let resnet = ModelZoo::resnet50();
        let vit = ModelZoo::vit();
        let whisper = ModelZoo::whisper_medium();

        // NCNN: no transformer support (LayerNorm missing), ResNet fine.
        assert!(!ncnn.supports(&gptn_s));
        assert!(!ncnn.supports(&vit));
        assert!(ncnn.supports(&resnet));
        // MNN: runs GPTN-S and ViT but not the 1.3B/2.7B models.
        assert!(mnn.supports(&gptn_s));
        assert!(!mnn.supports(&gptn_13));
        // LiteRT: classification only.
        assert!(litert.supports(&vit));
        assert!(litert.supports(&resnet));
        assert!(!litert.supports(&whisper));
        assert!(!litert.supports(&gptn_s));
        // ExecuTorch runs the 1.3B model (slowly) but not Whisper.
        assert!(etorch.supports(&gptn_13));
        assert!(!etorch.supports(&whisper));
        // TVM: no SD-UNet.
        assert!(!tvm.supports(&ModelZoo::sd_unet()));
        assert!(tvm.supports(&gptn_s));
        // Nobody supports GPTN-2.7B.
        for fw in PreloadFramework::all_baselines() {
            assert!(!fw.supports(&gptn_27), "{} should reject 2.7B", fw.name());
        }
        // SmartMem supports everything else in the table.
        for m in ModelZoo::all_evaluated() {
            if m.abbr != "GPTN-2.7B" {
                assert!(smem.supports(&m), "SmartMem should support {}", m.abbr);
            }
        }
    }

    #[test]
    fn init_dominates_latency_for_preloading_frameworks() {
        // Table 1's observation: load + transform dwarfs inference.
        let mnn = PreloadFramework::new(FrameworkProfile::mnn());
        let report = mnn
            .run(&ModelZoo::gptneo_small(), &DeviceSpec::oneplus_12())
            .unwrap();
        assert!(report.init_latency_ms > report.exec_latency_ms);
        assert!(
            report.init_latency_ms > 1_000.0,
            "{}",
            report.init_latency_ms
        );
    }

    #[test]
    fn smartmem_is_faster_and_leaner_than_mnn() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::vit();
        let mnn = PreloadFramework::new(FrameworkProfile::mnn())
            .run(&model, &device)
            .unwrap();
        let smem = PreloadFramework::new(FrameworkProfile::smartmem())
            .run(&model, &device)
            .unwrap();
        assert!(smem.integrated_latency_ms < mnn.integrated_latency_ms);
        assert!(smem.average_memory_mb < mnn.average_memory_mb);
    }

    #[test]
    fn executorch_execution_is_orders_of_magnitude_slower() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::vit();
        let etorch = PreloadFramework::new(FrameworkProfile::executorch())
            .run(&model, &device)
            .unwrap();
        let smem = PreloadFramework::new(FrameworkProfile::smartmem())
            .run(&model, &device)
            .unwrap();
        assert!(
            etorch.exec_latency_ms > 10.0 * smem.exec_latency_ms,
            "etorch {} vs smartmem {}",
            etorch.exec_latency_ms,
            smem.exec_latency_ms
        );
    }

    #[test]
    fn tvm_has_the_largest_memory_footprint() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::vit();
        let reports: Vec<ExecutionReport> = PreloadFramework::all_baselines()
            .iter()
            .filter(|f| f.supports(&model))
            .map(|f| f.run(&model, &device).unwrap())
            .collect();
        let tvm = reports.iter().find(|r| r.framework == "TVM").unwrap();
        for r in &reports {
            assert!(
                tvm.average_memory_mb >= r.average_memory_mb,
                "{}",
                r.framework
            );
        }
    }

    #[test]
    fn unsupported_model_returns_error() {
        let ncnn = PreloadFramework::new(FrameworkProfile::ncnn());
        let err = ncnn
            .run(&ModelZoo::vit(), &DeviceSpec::oneplus_12())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }

    #[test]
    fn conv_models_pay_heavier_transformation() {
        // SD-UNet's Winograd-style transforms inflate initialization time
        // disproportionately vs a transformer of comparable weight volume.
        let mnn = PreloadFramework::new(FrameworkProfile::mnn());
        let device = DeviceSpec::oneplus_12();
        let unet = mnn.run(&ModelZoo::sd_unet(), &device).unwrap();
        let whisper_like = mnn.run(&ModelZoo::deepvit(), &device).unwrap();
        let unet_weights = ModelZoo::sd_unet().graph().total_weight_bytes() as f64;
        let deepvit_weights = ModelZoo::deepvit().graph().total_weight_bytes() as f64;
        let unet_init_per_byte = unet.init_latency_ms / unet_weights;
        let deepvit_init_per_byte = whisper_like.init_latency_ms / deepvit_weights;
        assert!(unet_init_per_byte > deepvit_init_per_byte);
    }
}
