//! # flashmem-baselines
//!
//! Simulated baseline frameworks for the FlashMem evaluation:
//!
//! * [`PreloadFramework`] with behaviour profiles for **MNN**, **NCNN**,
//!   **TVM**, **LiteRT** and **ExecuTorch** — the commercial preloading
//!   frameworks of Tables 7/8, including their operator/model support matrix
//!   (the "–" cells).
//! * [`SmartMem`] — the precursor research prototype (layout-transformation
//!   elimination, still preloading) that FlashMem is measured against in the
//!   Mem-ReDT column, the breakdown study and the portability study.
//! * [`NaiveOverlap`] — the Always-Next and Same-Op-Type streaming strawmen of
//!   Figure 9, which share FlashMem's executor but plan without load-capacity
//!   awareness.
//!
//! All of them implement the [`InferenceEngine`] trait from `flashmem-core`,
//! and [`registry`] assembles the standard line-ups so the benchmark harness
//! can sweep the full engine × model × device matrix uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod naive_overlap;
pub mod preload;
pub mod registry;
pub mod smartmem;

pub use flashmem_core::engine::{
    run_or_dash, CompiledArtifact, EngineRegistry, FrameworkKind, InferenceEngine,
};
pub use naive_overlap::{NaiveOverlap, NaiveStrategy};
pub use preload::{FrameworkProfile, PreloadFramework};
pub use registry::{baseline_registry, flashmem_engine, standard_registry};
pub use smartmem::SmartMem;
