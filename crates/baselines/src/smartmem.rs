//! SmartMem — the precursor research prototype FlashMem builds on.
//!
//! SmartMem eliminates runtime layout transformations (Reshape/Transpose) by
//! choosing 2.5D texture layouts offline and ships well-tuned kernels, but it
//! is still a *preloading* framework: every weight is loaded and transformed
//! before the first kernel runs. It is the reference point for the paper's
//! Mem-ReDT column (Table 8), the breakdown study (Figure 7) and the
//! portability study (Figure 10).

use flashmem_core::engine::{CompiledArtifact, FrameworkKind, InferenceEngine};
use flashmem_core::ExecutionReport;
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::ModelSpec;

use crate::preload::{FrameworkProfile, PreloadFramework};

/// The SmartMem baseline.
#[derive(Debug, Clone)]
pub struct SmartMem {
    inner: PreloadFramework,
}

impl SmartMem {
    /// Create the SmartMem baseline with its published behaviour profile.
    pub fn new() -> Self {
        SmartMem {
            inner: PreloadFramework::new(FrameworkProfile::smartmem()),
        }
    }

    /// The underlying preload-framework profile.
    pub fn profile(&self) -> &FrameworkProfile {
        self.inner.profile()
    }
}

impl Default for SmartMem {
    fn default() -> Self {
        Self::new()
    }
}

impl InferenceEngine for SmartMem {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::SmartMem
    }

    fn supports(&self, model: &ModelSpec) -> bool {
        self.inner.supports(model)
    }

    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        self.inner.compile(model, device)
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        self.inner.execute(model, artifact, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn smartmem_identity_and_default() {
        let s = SmartMem::default();
        assert_eq!(s.kind(), FrameworkKind::SmartMem);
        assert_eq!(s.name(), "SmartMem");
        assert_eq!(s.profile().kind, FrameworkKind::SmartMem);
    }

    #[test]
    fn smartmem_runs_the_large_models_the_commercial_frameworks_reject() {
        let s = SmartMem::new();
        assert!(s.supports(&ModelZoo::gptneo_1_3b()));
        assert!(s.supports(&ModelZoo::sam2()));
        assert!(!s.supports(&ModelZoo::gptneo_2_7b()));
    }

    #[test]
    fn smartmem_report_separates_init_and_exec() {
        let report = SmartMem::new()
            .run(&ModelZoo::gptneo_small(), &DeviceSpec::oneplus_12())
            .unwrap();
        assert!(report.init_latency_ms > 0.0);
        assert!(report.exec_latency_ms > 0.0);
        assert!(
            (report.integrated_latency_ms - report.init_latency_ms - report.exec_latency_ms).abs()
                < 1e-6
        );
    }
}
