//! Assembly of the standard engine registries.
//!
//! `flashmem-core` defines the [`EngineRegistry`] type but cannot see the
//! baseline frameworks (they depend on it), so the full evaluation line-ups
//! are assembled here: every experiment driver that sweeps `engines × models
//! × devices` starts from one of these constructors instead of wiring
//! frameworks by hand.

use flashmem_core::engine::{EngineRegistry, FlashMemVariant, InferenceEngine};
use flashmem_core::FlashMemConfig;

use crate::naive_overlap::NaiveOverlap;
use crate::preload::{FrameworkProfile, PreloadFramework};
use crate::smartmem::SmartMem;

/// FlashMem with the paper's memory-priority configuration — the contender
/// every table measures against.
pub fn flashmem_engine() -> Box<dyn InferenceEngine> {
    Box::new(FlashMemVariant::new(
        "FlashMem",
        FlashMemConfig::memory_priority(),
    ))
}

/// The six baseline frameworks of Tables 7/8 (MNN, NCNN, TVM, LiteRT,
/// ExecuTorch, SmartMem), in table order.
pub fn baseline_registry() -> EngineRegistry {
    let mut registry = EngineRegistry::new();
    for profile in [
        FrameworkProfile::mnn(),
        FrameworkProfile::ncnn(),
        FrameworkProfile::tvm(),
        FrameworkProfile::litert(),
        FrameworkProfile::executorch(),
    ] {
        registry.register(Box::new(PreloadFramework::new(profile)));
    }
    registry.register(Box::new(SmartMem::new()));
    registry
}

/// Every framework of the paper's evaluation: the six preloading baselines,
/// FlashMem, and the two naive overlap strawmen of Figure 9.
pub fn standard_registry() -> EngineRegistry {
    let mut registry = baseline_registry();
    registry.register(flashmem_engine());
    registry.register(Box::new(NaiveOverlap::always_next()));
    registry.register(Box::new(NaiveOverlap::same_op_type()));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_core::engine::FrameworkKind;
    use flashmem_gpu_sim::DeviceSpec;
    use flashmem_graph::ModelZoo;

    #[test]
    fn standard_registry_covers_every_framework_kind() {
        let registry = standard_registry();
        assert_eq!(registry.len(), 9);
        for kind in FrameworkKind::all() {
            assert!(registry.get(kind).is_some(), "{kind} missing");
        }
    }

    #[test]
    fn baseline_registry_matches_table_order() {
        let registry = baseline_registry();
        let kinds = registry.kinds();
        assert_eq!(kinds, FrameworkKind::baselines().to_vec());
    }

    #[test]
    fn registry_engines_execute_through_the_trait() {
        let registry = standard_registry();
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::resnet50();
        let engine = registry.get(FrameworkKind::SmartMem).unwrap();
        let report = engine.run(&model, &device).unwrap();
        assert_eq!(report.framework, "SmartMem");
        assert!(report.integrated_latency_ms > 0.0);
    }
}
