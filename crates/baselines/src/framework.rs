//! The common interface every simulated framework implements.

use flashmem_core::ExecutionReport;
use flashmem_gpu_sim::{DeviceSpec, SimError};
use flashmem_graph::ModelSpec;
use serde::{Deserialize, Serialize};

/// Identity of a mobile DNN framework appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// Alibaba MNN.
    Mnn,
    /// Tencent NCNN.
    Ncnn,
    /// Apache TVM.
    Tvm,
    /// LiteRT (formerly TensorFlow Lite).
    LiteRt,
    /// PyTorch ExecuTorch.
    ExecuTorch,
    /// SmartMem (the precursor research prototype FlashMem builds on).
    SmartMem,
    /// FlashMem itself.
    FlashMem,
    /// The Always-Next naive overlap strategy (Figure 9).
    AlwaysNext,
    /// The Same-Op-Type prefetching strategy (Figure 9).
    SameOpType,
}

impl FrameworkKind {
    /// Display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            FrameworkKind::Mnn => "MNN",
            FrameworkKind::Ncnn => "NCNN",
            FrameworkKind::Tvm => "TVM",
            FrameworkKind::LiteRt => "LiteRT",
            FrameworkKind::ExecuTorch => "ExecuTorch",
            FrameworkKind::SmartMem => "SmartMem",
            FrameworkKind::FlashMem => "FlashMem",
            FrameworkKind::AlwaysNext => "Always-Next",
            FrameworkKind::SameOpType => "Same-Op-Type",
        }
    }

    /// The baseline frameworks compared in Tables 7 and 8, in table order.
    pub fn baselines() -> [FrameworkKind; 6] {
        [
            FrameworkKind::Mnn,
            FrameworkKind::Ncnn,
            FrameworkKind::Tvm,
            FrameworkKind::LiteRt,
            FrameworkKind::ExecuTorch,
            FrameworkKind::SmartMem,
        ]
    }
}

impl std::fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A framework that can execute (or refuse) one of the evaluation models on a
/// simulated device.
pub trait Framework {
    /// The framework's identity.
    fn kind(&self) -> FrameworkKind;

    /// Display name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether the framework supports the model at all (the "–" cells of
    /// Tables 7/8 come from operator gaps and model-scale limits).
    fn supports(&self, model: &ModelSpec) -> bool;

    /// Execute one inference of `model` on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for unsupported models and
    /// propagates simulator errors (most importantly out-of-memory).
    fn run(&self, model: &ModelSpec, device: &DeviceSpec) -> Result<ExecutionReport, SimError>;
}

/// Convenience: run a framework and flatten "unsupported" and OOM into `None`
/// (how the paper's tables render those cells).
pub fn run_or_dash(
    framework: &dyn Framework,
    model: &ModelSpec,
    device: &DeviceSpec,
) -> Option<ExecutionReport> {
    if !framework.supports(model) {
        return None;
    }
    framework.run(model, device).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = FrameworkKind::baselines().iter().map(|k| k.name()).collect();
        names.push(FrameworkKind::FlashMem.name());
        names.push(FrameworkKind::AlwaysNext.name());
        names.push(FrameworkKind::SameOpType.name());
        assert!(names.iter().all(|n| !n.is_empty()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn baseline_list_matches_table_order() {
        let b = FrameworkKind::baselines();
        assert_eq!(b[0], FrameworkKind::Mnn);
        assert_eq!(b[5], FrameworkKind::SmartMem);
    }
}
