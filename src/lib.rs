//! # FlashMem
//!
//! `flashmem` is the umbrella crate for the FlashMem reproduction: a
//! memory-streaming DNN execution framework for mobile GPUs, built on a
//! discrete-event simulator of the mobile GPU memory hierarchy
//! (disk → unified memory → 2.5D texture memory → streaming multiprocessors).
//!
//! It re-exports the public API of every workspace crate so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`trace`] — deterministic, sim-clock-stamped cross-layer event tracing
//!   with Chrome trace-event export and per-request phase attribution
//!   (also reachable as `flashmem::core::telemetry`).
//! * [`gpu_sim`] — mobile GPU memory-hierarchy simulator (devices, memory
//!   pools, command queues, kernels, energy model).
//! * [`graph`] — DNN computational graphs, operator taxonomy, the model zoo
//!   used in the paper's evaluation (GPT-Neo, ViT, SD-UNet, Whisper, ...).
//! * [`solver`] — a small CP-SAT style constraint-programming solver used by
//!   the Overlap Plan Generation (OPG) formulation.
//! * [`profiler`] — operator classification, load-capacity profiling and the
//!   gradient-boosted latency regressor.
//! * [`core`] — the FlashMem contribution itself: OPG, the LC-OPG solver with
//!   fallbacks, adaptive fusion, kernel rewriting and the streaming executor.
//! * [`baselines`] — simulated baseline frameworks (MNN, NCNN, TVM, LiteRT,
//!   ExecuTorch, SmartMem) and naive overlap strategies.
//! * [`serve`] — the multi-tenant serving layer: a dual-queue event loop,
//!   FIFO/priority/affinity/preemptive and deadline-aware (EDF,
//!   least-laxity, deadline-triggered preemption) scheduling over a device
//!   fleet, per-tenant memory caps, SLO deadlines and the plan cache.
//!
//! A crate-by-crate walkthrough of how these layers fit together lives in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! ## Quickstart
//!
//! ```rust
//! use flashmem::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Pick one of the paper's evaluation models and the flagship device.
//! let model = ModelZoo::vit();
//! let device = DeviceSpec::oneplus_12();
//!
//! // Compile an overlap plan and run a streamed inference.
//! let runtime = FlashMem::new(device).with_config(FlashMemConfig::memory_priority());
//! let report = runtime.run(&model)?;
//!
//! assert!(report.integrated_latency_ms > 0.0);
//! assert!(report.peak_memory_mb > 0.0);
//! # Ok(())
//! # }
//! ```

pub use flashmem_baselines as baselines;
pub use flashmem_core as core;
pub use flashmem_gpu_sim as gpu_sim;
pub use flashmem_graph as graph;
pub use flashmem_profiler as profiler;
pub use flashmem_serve as serve;
pub use flashmem_solver as solver;
pub use flashmem_trace as trace;

/// Convenience prelude re-exporting the types used by nearly every program
/// built on FlashMem.
pub mod prelude {
    pub use flashmem_baselines::{
        baseline_registry, standard_registry, NaiveOverlap, PreloadFramework, SmartMem,
    };
    pub use flashmem_core::{
        AdaptiveFusion, ArtifactCache, CachedEngine, CompiledArtifact, EngineRegistry,
        ExecutionReport, FlashMem, FlashMemConfig, FlashMemVariant, FrameworkKind, InferenceEngine,
        LcOpgSolver, OverlapPlan, ThreadPool,
    };
    pub use flashmem_gpu_sim::{DeviceSpec, GpuSimulator, MemoryTracker, SimConfig};
    pub use flashmem_graph::{Graph, ModelZoo, OpCategory, OpKind, TensorDesc};
    pub use flashmem_profiler::{CapacityProfiler, LoadCapacity, OperatorClass};
    pub use flashmem_serve::{
        AffinityPolicy, ArrivalPattern, ChaosScenario, DeadlinePreemptivePolicy, EdfPolicy,
        FailureCause, FaultKind, FaultPlan, FifoPolicy, LeastLaxityPolicy, MissCause,
        MultiModelRunner, PolicyContext, PreemptionCost, PreemptivePriorityPolicy, PriorityPolicy,
        RecoveryControl, ServeEngine, ServeRequest, SloSummary, WorkloadSpec,
    };
    pub use flashmem_solver::{CpModel, CpSolver, SolveStatus};
    pub use flashmem_trace::{chrome_trace, FleetTrace, PhaseBreakdown, TraceConfig};
}
